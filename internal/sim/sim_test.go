package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
)

func cfg2() cluster.Config {
	return cluster.Config{Name: "t", Resources: []string{"nodes", "bb"}, Capacities: []int{10, 8}}
}

// greedyFCFS starts queued jobs in arrival order while they fit — the
// minimal policy for exercising the simulator itself.
func greedyFCFS() Policy {
	return PolicyFunc(func(s *Simulator) {
		for {
			started := false
			for _, j := range s.Queue() {
				if s.Cluster().CanFit(j.Demand) {
					if err := s.StartJob(j); err != nil {
						panic(err)
					}
					started = true
					break
				}
				break // strict FCFS: head blocks the rest
			}
			if !started {
				return
			}
		}
	})
}

func mk(id int, submit, runtime float64, nodes, bb int) *job.Job {
	return &job.Job{ID: id, Submit: submit, Runtime: runtime, Walltime: runtime, Demand: []int{nodes, bb}}
}

func TestSingleJobLifecycle(t *testing.T) {
	s := New(cfg2(), greedyFCFS())
	j := mk(1, 10, 100, 4, 2)
	if err := s.Load([]*job.Job{j}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if j.State != job.Finished {
		t.Fatalf("state = %v", j.State)
	}
	if j.Start != 10 || j.End != 110 {
		t.Fatalf("start/end = %v/%v", j.Start, j.End)
	}
	if s.Cluster().NumRunning() != 0 {
		t.Fatal("resources leaked")
	}
	if len(s.Finished()) != 1 {
		t.Fatal("finished count wrong")
	}
}

func TestQueuedBehindBigJob(t *testing.T) {
	s := New(cfg2(), greedyFCFS())
	jobs := []*job.Job{
		mk(1, 0, 100, 10, 0), // fills the machine
		mk(2, 5, 50, 10, 0),  // must wait until t=100
	}
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if jobs[1].Start != 100 {
		t.Fatalf("job 2 start = %v, want 100", jobs[1].Start)
	}
	if w := jobs[1].Wait(); w != 95 {
		t.Fatalf("job 2 wait = %v, want 95", w)
	}
}

func TestFinishAppliesBeforeSubmitAtSameInstant(t *testing.T) {
	// Job 1 ends exactly when job 2 arrives; job 2 must see the free nodes.
	s := New(cfg2(), greedyFCFS())
	jobs := []*job.Job{
		mk(1, 0, 100, 10, 0),
		mk(2, 100, 10, 10, 0),
	}
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if jobs[2-1].Start != 100 {
		t.Fatalf("job 2 start = %v, want 100", jobs[1].Start)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	// One job using half the nodes for the whole window -> 50% utilization.
	s := New(cfg2(), greedyFCFS())
	jobs := []*job.Job{
		mk(1, 0, 100, 5, 0),
		mk(2, 0, 100, 5, 4),
	}
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if u := s.Utilization(0); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("node util = %v, want 1.0", u)
	}
	if u := s.Utilization(1); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("bb util = %v, want 0.5", u)
	}
	if rs := s.ResourceSeconds(0); math.Abs(rs-1000) > 1e-9 {
		t.Fatalf("node-seconds = %v, want 1000", rs)
	}
}

func TestUtilizationWindowStartsAtFirstEvent(t *testing.T) {
	// Trace starting at t=1000 must not dilute utilization with [0,1000).
	s := New(cfg2(), greedyFCFS())
	if err := s.Load([]*job.Job{mk(1, 1000, 100, 10, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if u := s.Utilization(0); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("util = %v, want 1.0", u)
	}
	start, end := s.ElapsedWindow()
	if start != 1000 || end != 1100 {
		t.Fatalf("window = [%v,%v]", start, end)
	}
}

func TestLoadRejectsDuplicatesAndInvalid(t *testing.T) {
	s := New(cfg2(), greedyFCFS())
	if err := s.Load([]*job.Job{mk(1, 0, 10, 4, 0), mk(1, 5, 10, 4, 0)}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	s = New(cfg2(), greedyFCFS())
	if err := s.Load([]*job.Job{mk(2, 0, 10, 99, 0)}); err == nil {
		t.Fatal("over-capacity job accepted")
	}
}

func TestStartJobErrors(t *testing.T) {
	s := New(cfg2(), PolicyFunc(func(*Simulator) {}))
	j := mk(1, 0, 10, 4, 0)
	if err := s.Load([]*job.Job{j}); err != nil {
		t.Fatal(err)
	}
	// Starting a job twice must fail on the second call.
	_, _ = s.Step()
	if err := s.StartJob(j); err != nil {
		t.Fatal(err)
	}
	if err := s.StartJob(j); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestRunReportsStarvation(t *testing.T) {
	// A policy that never starts anything leaves the queue non-empty.
	s := New(cfg2(), PolicyFunc(func(*Simulator) {}))
	if err := s.Load([]*job.Job{mk(1, 0, 10, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err == nil {
		t.Fatal("starved run must error")
	}
}

func TestDecisionHook(t *testing.T) {
	s := New(cfg2(), greedyFCFS())
	calls := 0
	s.DecisionHook = func(*Simulator) { calls++ }
	if err := s.Load([]*job.Job{mk(1, 0, 10, 1, 0), mk(2, 5, 10, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != s.Decisions || calls == 0 {
		t.Fatalf("hook calls = %d, decisions = %d", calls, s.Decisions)
	}
}

// Property: with a greedy FCFS policy, every job eventually runs, no job
// starts before submit, and concurrent usage never exceeds capacity (checked
// through cluster invariants at every decision).
func TestSimulationInvariantsProperty(t *testing.T) {
	run := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 5
		jobs := make([]*job.Job, n)
		clk := 0.0
		for i := range jobs {
			clk += float64(rng.Intn(50))
			jobs[i] = mk(i+1, clk, float64(rng.Intn(200)+1), rng.Intn(10)+1, rng.Intn(9))
		}
		s := New(cfg2(), greedyFCFS())
		ok := true
		s.DecisionHook = func(s *Simulator) {
			if err := s.Cluster().CheckInvariants(); err != nil {
				ok = false
			}
		}
		if err := s.Load(jobs); err != nil {
			return false
		}
		if err := s.Run(); err != nil {
			return false
		}
		for _, j := range jobs {
			if j.State != job.Finished || j.Start < j.Submit || j.End != j.Start+j.Runtime {
				return false
			}
		}
		return ok
	}
	for seed := int64(0); seed < 25; seed++ {
		if !run(seed) {
			t.Fatalf("invariants violated for seed %d", seed)
		}
	}
}

func TestEventOrderingWithinInstant(t *testing.T) {
	// Two finishes and one submit at the same time: both finishes must apply
	// before the policy sees the queue.
	s := New(cfg2(), greedyFCFS())
	jobs := []*job.Job{
		mk(1, 0, 100, 5, 0),
		mk(2, 0, 100, 5, 0),
		mk(3, 100, 10, 10, 0),
	}
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if jobs[2].Start != 100 {
		t.Fatalf("job 3 start = %v, want 100", jobs[2].Start)
	}
}
