package telemetry

import "testing"

// The instrument benchmarks back the 0 allocs/op contract (run with
// -benchmem; CI smoke-runs them with -benchtime=1x) and put a number on
// the per-record cost the hot paths pay.

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 977)
	}
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Record(v)
			v = v*2862933555777941757 + 3037000493 // cheap LCG spread across buckets
			if v < 0 {
				v = -v
			}
		}
	})
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	reg := NewRegistry()
	for _, n := range []string{"a", "b", "c", "d"} {
		reg.Counter("ctr_" + n).Inc()
		reg.Gauge("gauge_" + n).Set(1)
		h := reg.Histogram("hist_" + n)
		for i := int64(0); i < 4096; i++ {
			h.Record(i * 251)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = reg.Snapshot()
	}
}
