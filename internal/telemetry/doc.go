// Package telemetry is the runtime observability subsystem: lock-cheap
// instruments (atomic counters, gauges, and fixed-bucket latency
// histograms), a named registry with point-in-time snapshots, an
// append-only JSONL run journal, an opt-in HTTP exposition endpoint
// (/metrics, /health, net/http/pprof), and the key=value structured logger
// the cmd binaries share for startup lines. It depends on the standard
// library only, so every layer of the stack — the decision daemon
// (internal/serve), the distributed campaign runner (internal/distrib),
// and the training harness (internal/rollout) — can carry instruments
// without acquiring dependencies.
//
// # The observe-only determinism contract
//
// Instrumentation observes computations; it never participates in them.
// Concretely:
//
//  1. Recording is side-effect-free toward the instrumented code: Counter,
//     Gauge, and Histogram mutate only their own atomics, draw no random
//     numbers, read no clocks, and allocate nothing on the record path
//     (0 allocs/op, pinned by testing.AllocsPerRun guards). An instrumented
//     run therefore produces bitwise-identical decisions, weights, replay
//     contents, and reports to an uninstrumented one.
//
//  2. Wall-clock reads happen only at observation boundaries — around a
//     batched forward pass, around a gradient step, at a rollout round
//     boundary — never inside a decision or training computation, and the
//     measured durations feed instruments and journals only, never control
//     flow. The rollout resume-equivalence, distrib fault-matrix, and serve
//     byte-identity suites all run with instruments active to enforce this.
//
//  3. Journals and logs are serialization sinks: they may allocate and
//     block on I/O, so they sit on event paths (a swap, a requeue, an
//     episode boundary), not on per-decision hot paths.
//
// Consequently the determinism contracts of internal/rollout (rules 1-10),
// internal/distrib (rules 1-9), and internal/serve (rules 1-6) hold
// verbatim with telemetry enabled; those package docs state the same in
// one sentence each and defer here for the reasoning.
//
// # Instruments
//
// Counter is a monotonic atomic uint64. Gauge is an atomic float64 (bit-
// cast), with Set and Add. Histogram is a fixed-bucket log-linear (HDR-
// style) histogram over non-negative int64 values — nanosecond latencies,
// batch sizes — with 64 sub-buckets per power of two: values below 64 are
// recorded exactly, larger values with a relative error bounded by 1/64
// (1.6%). Quantile extraction is exact over the bucketed representation:
// Quantile(q) returns the representative value of precisely the bucket
// holding the nearest-rank order statistic, the same rank convention the
// retired sort-based loadgen percentile code used. Count, Sum, and Max are
// tracked exactly.
//
// All instruments are safe for concurrent use and are obtained get-or-
// create from a Registry by name; a nil *Registry hands out live but
// unexported instruments, so wiring code never branches on "telemetry
// enabled?".
//
// # Run journal
//
// Journal writes one JSON object per line: {"seq":N,"ts":"...",
// "event":"name", ...key/value pairs}. seq is monotonic from 1 within a
// journal, so gaps or reordering in shipped logs are detectable. A nil
// *Journal drops events, mirroring the nil-Registry convention.
//
// # Exposition
//
// Handler serves GET /metrics (plain "name value" text, or JSON with
// ?format=json), GET /health, and the net/http/pprof suite under
// /debug/pprof/. ListenAndServe mounts it on a TCP address — the cmd
// binaries' -telemetry-addr flag.
package telemetry
