package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucketing: log-linear (HDR-style) over non-negative int64
// values. Values below subCount are recorded exactly (one bucket per
// value); above that, each power of two splits into subCount linear
// sub-buckets, bounding the relative quantization error by 1/subCount.
const (
	histSubBits  = 6
	histSubCount = 1 << histSubBits // 64 sub-buckets per power of two
	// Indexes run [0, subCount) exact, then (shift+1)*subCount+sub for
	// shift = exp-subBits in [0, 63-subBits]; +1 past the max index.
	histBuckets = (64 - histSubBits + 1) * histSubCount
)

// Histogram is a fixed-bucket latency/size histogram: concurrent, with an
// allocation-free record path (one atomic add into the value's bucket plus
// exact count/sum/max maintenance) and nearest-rank quantile extraction
// that is exact over the bucketed representation — Quantile returns the
// representative value of precisely the bucket holding the nearest-rank
// order statistic. Obtain one from Registry.Histogram; the zero value is
// also ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // v in [2^exp, 2^(exp+1))
	shift := exp - histSubBits
	sub := int(v>>uint(shift)) - histSubCount // linear position within the power of two
	return (shift+1)*histSubCount + sub
}

// bucketValue is bucketIndex's representative inverse: the exact value in
// the exact region, the bucket midpoint above it (error ≤ half the bucket
// width, i.e. ≤ 1/(2·subCount) relative).
func bucketValue(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	shift := uint(i/histSubCount - 1)
	lower := uint64(histSubCount+i%histSubCount) << shift
	return int64(lower + (uint64(1)<<shift)/2)
}

// Record adds one observation. Negative values clamp to zero. The path is
// atomic adds only: no locks, no allocation, no clock or rng access.
func (h *Histogram) Record(v int64) {
	u := uint64(0)
	if v > 0 {
		u = uint64(v)
	}
	h.counts[bucketIndex(u)].Add(1)
	h.count.Add(1)
	h.sum.Add(u)
	for {
		old := h.max.Load()
		if u <= old || h.max.CompareAndSwap(old, u) {
			return
		}
	}
}

// RecordDuration records d in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count reads the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max reads the exact maximum recorded value (0 if none).
func (h *Histogram) Max() int64 { return int64(h.max.Load()) }

// Mean reads the exact mean of recorded values (0 if none).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile reads the q-quantile from a point-in-time snapshot; prefer
// Snapshot when extracting several quantiles of one distribution.
func (h *Histogram) Quantile(q float64) int64 { return h.Snapshot().Quantile(q) }

// HistSnapshot is a point-in-time copy of a histogram, consistent across
// its quantiles.
type HistSnapshot struct {
	counts []uint64
	count  uint64
	sum    uint64
	max    uint64
}

// Snapshot copies the histogram state. Concurrent recorders may land
// between the per-bucket reads; each bucket is individually exact and the
// skew is bounded by the records in flight during the copy.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		counts: make([]uint64, histBuckets),
		max:    h.max.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.counts[i] = c
		s.count += c
	}
	s.sum = h.sum.Load()
	return s
}

// Count reads the snapshot's observation count.
func (s HistSnapshot) Count() uint64 { return s.count }

// Max reads the snapshot's exact maximum (0 if empty).
func (s HistSnapshot) Max() int64 { return int64(s.max) }

// Mean reads the snapshot's exact mean (0 if empty).
func (s HistSnapshot) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.count)
}

// Quantile returns the q-quantile by the nearest-rank convention
// rank = round(q·n) (clamped to [1, n]) — the same convention the retired
// sort-based loadgen percentiles used — as the representative value of the
// bucket holding that order statistic. Empty snapshots return 0.
func (s HistSnapshot) Quantile(q float64) int64 {
	n := s.count
	if n == 0 {
		return 0
	}
	idx := int64(q*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= int64(n) {
		idx = int64(n) - 1
	}
	var cum int64
	for i, c := range s.counts {
		cum += int64(c)
		if cum > idx {
			return bucketValue(i)
		}
	}
	return int64(s.max) // unreachable with consistent counts
}
