package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// nearestRank replicates the quantile rank convention shared by
// HistSnapshot.Quantile and the retired sort-based loadgen percentiles:
// rank = round(q·n), clamped to [1, n], over ascending values.
func nearestRank(sorted []int64, q float64) int64 {
	n := len(sorted)
	idx := int(q*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// The histogram property: for any workload, Quantile(q) is exactly the
// bucket representative of the nearest-rank order statistic — quantile
// extraction is exact over the bucketed representation, and within 1/64
// relative error of the raw statistic.
func TestHistogramQuantilesMatchSortedReference(t *testing.T) {
	quantiles := []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	workloads := []struct {
		name string
		gen  func(rng *rand.Rand, n int) []int64
	}{
		{"uniform_small", func(rng *rand.Rand, n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = rng.Int63n(64) // the exact region
			}
			return out
		}},
		{"uniform_wide", func(rng *rand.Rand, n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = rng.Int63n(int64(10 * time.Second))
			}
			return out
		}},
		{"lognormal_latency", func(rng *rand.Rand, n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = int64(math.Exp(rng.NormFloat64()*1.5+13) + 0.5) // ~µs-to-ms scale ns
			}
			return out
		}},
		{"heavy_tail", func(rng *rand.Rand, n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = rng.Int63() >> uint(14+rng.Intn(40))
			}
			return out
		}},
		{"constant", func(rng *rand.Rand, n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = 123456
			}
			return out
		}},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for _, n := range []int{1, 2, 17, 1000} {
				values := wl.gen(rng, n)
				var h Histogram
				for _, v := range values {
					h.Record(v)
				}
				sorted := append([]int64(nil), values...)
				sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
				snap := h.Snapshot()
				if snap.Count() != uint64(n) {
					t.Fatalf("n=%d: count %d", n, snap.Count())
				}
				if snap.Max() != sorted[n-1] {
					t.Fatalf("n=%d: max %d, want exact %d", n, snap.Max(), sorted[n-1])
				}
				var sum float64
				for _, v := range values {
					sum += float64(v)
				}
				if mean := snap.Mean(); math.Abs(mean-sum/float64(n)) > 1e-6*sum/float64(n)+1e-9 {
					t.Fatalf("n=%d: mean %g, want exact %g", n, mean, sum/float64(n))
				}
				for _, q := range quantiles {
					raw := nearestRank(sorted, q)
					want := bucketValue(bucketIndex(uint64(raw)))
					got := snap.Quantile(q)
					if got != want {
						t.Errorf("n=%d q=%g: Quantile=%d, want bucket representative %d of raw %d", n, q, got, want, raw)
					}
					if tol := raw/64 + 1; got < raw-tol || got > raw+tol {
						t.Errorf("n=%d q=%g: Quantile=%d outside 1/64 tolerance of raw %d", n, q, got, raw)
					}
				}
			}
		})
	}
}

// Bucket-boundary edges: powers of two, the exact-region boundary, the
// extremes, and negatives (clamped to 0) must round-trip through
// bucketIndex/bucketValue within their bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []int64{0, 1, 62, 63, 64, 65, 127, 128, 129, 255, 256,
		1<<20 - 1, 1 << 20, 1<<20 + 1, math.MaxInt64 - 1, math.MaxInt64}
	for _, v := range cases {
		i := bucketIndex(uint64(v))
		if i < 0 || i >= histBuckets {
			t.Fatalf("v=%d: bucket %d outside [0,%d)", v, i, histBuckets)
		}
		rep := bucketValue(i)
		if v < histSubCount {
			if rep != v {
				t.Errorf("v=%d in the exact region maps to representative %d", v, rep)
			}
			continue
		}
		diff := v - rep
		if diff < 0 {
			diff = -diff
		}
		if diff > v/64+1 {
			t.Errorf("v=%d: representative %d outside 1/64 tolerance", v, rep)
		}
		if bucketIndex(uint64(rep)) != i {
			t.Errorf("v=%d: representative %d falls in bucket %d, not %d", v, rep, bucketIndex(uint64(rep)), i)
		}
	}
	// Bucket indexes are monotone in the value.
	prev := -1
	for _, v := range cases {
		if i := bucketIndex(uint64(v)); i < prev {
			t.Fatalf("bucketIndex not monotone at v=%d", v)
		} else {
			prev = i
		}
	}
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Snapshot().Quantile(0.5) != 0 {
		t.Error("negative values must clamp to the zero bucket")
	}
}

// Concurrent writers: the histogram must tolerate racing Record calls
// without losing observations (run under -race in CI).
func TestHistogramConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 5000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count() != writers*perWriter {
		t.Fatalf("count %d, want %d", snap.Count(), writers*perWriter)
	}
	var total uint64
	for _, c := range snap.counts {
		total += c
	}
	if total != writers*perWriter {
		t.Fatalf("bucket mass %d, want %d", total, writers*perWriter)
	}
}

// The zero-alloc guard: the record paths of all three instruments must not
// allocate — they sit on decision and training hot paths, where an
// allocation would be a per-operation GC tax and a contract violation
// (telemetry doc, observe-only rule 1).
func TestRecordPathsDoNotAllocate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("allocs_counter")
	g := reg.Gauge("allocs_gauge")
	h := reg.Histogram("allocs_hist")
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Errorf("Counter record path allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(4.2); g.Add(-1) }); n != 0 {
		t.Errorf("Gauge record path allocates %v/op", n)
	}
	v := int64(0)
	if n := testing.AllocsPerRun(1000, func() { h.Record(v); v += 977 }); n != 0 {
		t.Errorf("Histogram record path allocates %v/op", n)
	}
}
