package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler serves the exposition endpoints for a registry:
//
//	GET /metrics         plain text, one "name value" line per instrument
//	                     (histograms expand to _count/_mean/_p50/_p99/
//	                     _p999/_max rows); ?format=json returns the
//	                     Snapshot as JSON
//	GET /health          {"status":"ok","uptime_sec":...}
//	GET /debug/pprof/    the net/http/pprof suite (profile, heap, trace...)
//
// The handler is read-only over the registry: scraping never perturbs the
// instrumented process beyond the atomic loads of a Snapshot.
func Handler(reg *Registry) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(s)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, c := range s.Counters {
			fmt.Fprintf(w, "%s %d\n", c.Name, c.Value)
		}
		for _, g := range s.Gauges {
			fmt.Fprintf(w, "%s %s\n", g.Name, strconv.FormatFloat(g.Value, 'g', -1, 64))
		}
		for _, h := range s.Histograms {
			fmt.Fprintf(w, "%s_count %d\n", h.Name, h.Count)
			fmt.Fprintf(w, "%s_mean %s\n", h.Name, strconv.FormatFloat(h.Mean, 'g', -1, 64))
			fmt.Fprintf(w, "%s_p50 %d\n", h.Name, h.P50)
			fmt.Fprintf(w, "%s_p99 %d\n", h.Name, h.P99)
			fmt.Fprintf(w, "%s_p999 %d\n", h.Name, h.P999)
			fmt.Fprintf(w, "%s_max %d\n", h.Name, h.Max)
		}
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_sec\":%.3f}\n", time.Since(start).Seconds())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running exposition endpoint (ListenAndServe).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe mounts Handler(reg) on a TCP address and serves it in the
// background — the implementation of the cmd binaries' -telemetry-addr
// flag. Close stops it.
func ListenAndServe(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(reg)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
