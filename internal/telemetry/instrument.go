package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; the record path performs one atomic add and never
// allocates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic float64 point-in-time value (bit-cast onto a uint64).
// The zero value reads 0; Set performs one atomic store and never
// allocates.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (CAS loop; use for up/down counts like
// active connections).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value reads the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
