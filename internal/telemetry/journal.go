package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// Journal is the structured run journal: an append-only JSONL event log.
// Every event is one line — {"seq":N,"ts":"...","event":"name",...} — with
// a sequence number monotonic from 1 within the journal, so gaps or
// reordering in shipped logs are detectable. Writes are serialized by an
// internal mutex; a nil *Journal drops events, mirroring the nil-Registry
// convention, so event paths need no enablement branches.
//
// Journals sit on event paths (a model swap, a cell requeue, an episode
// boundary), never on per-decision hot paths: an event marshals JSON and
// blocks on the writer. The first write error is sticky (Err) and later
// events are dropped — observability must not take the observed process
// down with a full disk.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer // non-nil when the journal owns the file
	seq uint64
	now func() time.Time
	err error
	buf bytes.Buffer
}

// NewJournal journals onto w. The caller keeps ownership of w.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, now: time.Now}
}

// OpenJournal opens (creating, append-only) the JSONL file at path. Close
// releases it; sequence numbers still start at 1 per process, so a reused
// file carries one monotonic run per process lifetime.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: journal: %w", err)
	}
	j := NewJournal(f)
	j.c = f
	return j, nil
}

// Event appends one event line built from alternating key/value pairs
// (trailing odd keys get null). Keys must be plain strings; values are
// JSON-marshaled (unmarshalable values degrade to their fmt string). A nil
// journal drops the event.
func (j *Journal) Event(event string, kv ...any) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.seq++
	b := &j.buf
	b.Reset()
	b.WriteString(`{"seq":`)
	b.WriteString(strconv.FormatUint(j.seq, 10))
	b.WriteString(`,"ts":`)
	b.WriteString(strconv.Quote(j.now().Format(time.RFC3339Nano)))
	b.WriteString(`,"event":`)
	b.WriteString(strconv.Quote(event))
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b.WriteByte(',')
		b.WriteString(strconv.Quote(key))
		b.WriteByte(':')
		if i+1 >= len(kv) {
			b.WriteString("null")
			continue
		}
		v, err := json.Marshal(kv[i+1])
		if err != nil {
			v, _ = json.Marshal(fmt.Sprint(kv[i+1]))
		}
		b.Write(v)
	}
	b.WriteString("}\n")
	if _, err := j.w.Write(b.Bytes()); err != nil {
		j.err = fmt.Errorf("telemetry: journal write: %w", err)
	}
}

// Seq reports the last assigned sequence number (0 before any event).
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Err reports the sticky first write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close releases an OpenJournal file (no-op for NewJournal and nil).
func (j *Journal) Close() error {
	if j == nil || j.c == nil {
		return nil
	}
	return j.c.Close()
}
