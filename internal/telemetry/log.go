package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Logger is the shared structured logger for operator-facing lines: every
// event is one `ts=... component=... event=... key=value ...` line, so the
// three cmd binaries emit startup and status information in one greppable
// format. Values containing spaces, quotes, or '=' are strconv-quoted.
// It complements the Journal: the journal is the machine-read JSONL record
// of a run, the logger the human-read stderr stream.
type Logger struct {
	mu        sync.Mutex
	w         io.Writer
	component string
	now       func() time.Time
}

// NewLogger logs key=value lines for the named component (the cmd name)
// onto w.
func NewLogger(w io.Writer, component string) *Logger {
	return &Logger{w: w, component: component, now: time.Now}
}

// Event writes one line from alternating key/value pairs; values go
// through fmt-free formatting for common types and fmt otherwise. A nil
// logger drops the line.
func (l *Logger) Event(event string, kv ...any) {
	if l == nil {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.now().Format(time.RFC3339))
	b.WriteString(" component=")
	b.WriteString(logValue(l.component))
	b.WriteString(" event=")
	b.WriteString(logValue(event))
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(logValue(kv[i]))
		b.WriteByte('=')
		if i+1 < len(kv) {
			b.WriteString(logValue(kv[i+1]))
		}
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}

// logValue renders one key or value, quoting anything that would break
// key=value tokenization.
func logValue(v any) string {
	var s string
	switch t := v.(type) {
	case string:
		s = t
	case int:
		s = strconv.Itoa(t)
	case int64:
		s = strconv.FormatInt(t, 10)
	case uint64:
		s = strconv.FormatUint(t, 10)
	case float64:
		s = strconv.FormatFloat(t, 'g', -1, 64)
	case bool:
		s = strconv.FormatBool(t)
	case time.Duration:
		s = t.String()
	case error:
		s = t.Error()
	default:
		if str, ok := v.(interface{ String() string }); ok {
			s = str.String()
		} else {
			s = fmt.Sprint(v)
		}
	}
	if s == "" || strings.ContainsAny(s, " =\"\t\n") {
		return strconv.Quote(s)
	}
	return s
}
