package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is a named instrument catalog: get-or-create by name, snapshot
// on demand. Instruments are created once at wire-up time and cached by
// their owners; lookups never sit on record paths. A nil *Registry is
// valid everywhere and hands out live but unregistered instruments, so
// instrumented code needs no "telemetry enabled?" branches — recording
// into an orphan instrument is as cheap as recording into an exported one.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// checkName panics on a cross-kind name collision — a programming error
// (two call sites disagreeing on what a metric is), not a runtime
// condition.
func (r *Registry) checkName(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("telemetry: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("telemetry: %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("telemetry: %q already registered as a histogram", name))
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue summarizes one histogram in a snapshot.
type HistogramValue struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// Snapshot is a point-in-time view of every registered instrument, each
// slice sorted by name.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot reads every instrument once. Concurrent recorders keep running;
// each instrument's values are individually consistent (histograms via
// their own snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hs := h.Snapshot()
		s.Histograms = append(s.Histograms, HistogramValue{
			Name:  name,
			Count: hs.Count(),
			Mean:  hs.Mean(),
			P50:   hs.Quantile(0.50),
			P99:   hs.Quantile(0.99),
			P999:  hs.Quantile(0.999),
			Max:   hs.Max(),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
