package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("Counter must return the same instance per name")
	}
	if reg.Gauge("b") != reg.Gauge("b") {
		t.Error("Gauge must return the same instance per name")
	}
	if reg.Histogram("c") != reg.Histogram("c") {
		t.Error("Histogram must return the same instance per name")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-kind name collision must panic")
			}
		}()
		reg.Gauge("a")
	}()
}

func TestNilRegistryHandsOutLiveInstruments(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	c.Inc()
	if c.Value() != 1 {
		t.Error("nil-registry counter must record")
	}
	g := reg.Gauge("x")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Error("nil-registry gauge must record")
	}
	h := reg.Histogram("x")
	h.Record(7)
	if h.Count() != 1 {
		t.Error("nil-registry histogram must record")
	}
	if s := reg.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil-registry snapshot must be empty")
	}
}

func TestRegistrySnapshotSortedAndComplete(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_ctr").Add(5)
	reg.Counter("a_ctr").Inc()
	reg.Gauge("mid_gauge").Set(-1.5)
	hist := reg.Histogram("lat")
	for i := int64(1); i <= 100; i++ {
		hist.Record(i)
	}
	s := reg.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a_ctr" || s.Counters[1].Name != "z_ctr" {
		t.Fatalf("counters not sorted/complete: %+v", s.Counters)
	}
	if s.Counters[1].Value != 5 {
		t.Errorf("z_ctr = %d, want 5", s.Counters[1].Value)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != -1.5 {
		t.Errorf("gauges: %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms: %+v", s.Histograms)
	}
	hv := s.Histograms[0]
	if hv.Count != 100 || hv.Max != 100 || hv.P50 != 50 {
		t.Errorf("hist summary: %+v", hv)
	}
}

func TestJournalEmitsMonotonicValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	j.Event("round_complete", "round", 3, "episodes", int64(128), "loss", 0.25)
	j.Event("swap", "version", uint64(2), "ok", true, "dangling")
	j.Event("weird", "msg", "a b=\"c\"", 42, nil)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if j.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", j.Seq())
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d: %q", len(lines), buf.String())
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if seq, _ := m["seq"].(float64); seq != float64(i+1) {
			t.Errorf("line %d: seq = %v, want %d", i+1, m["seq"], i+1)
		}
		if _, ok := m["ts"].(string); !ok {
			t.Errorf("line %d: missing ts", i+1)
		}
	}
	var first map[string]any
	json.Unmarshal([]byte(lines[0]), &first)
	if first["event"] != "round_complete" || first["round"] != float64(3) || first["loss"] != 0.25 {
		t.Errorf("first event fields wrong: %v", first)
	}
	var third map[string]any
	json.Unmarshal([]byte(lines[2]), &third)
	if third["msg"] != `a b="c"` {
		t.Errorf("string value mangled: %v", third["msg"])
	}
	if v, present := third["42"]; !present || v != nil {
		t.Errorf("odd trailing key must serialize as null: %v", third)
	}

	var nilJ *Journal
	nilJ.Event("dropped") // must not panic
	if nilJ.Seq() != 0 || nilJ.Err() != nil || nilJ.Close() != nil {
		t.Error("nil journal accessors must be inert")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.n--
	return len(p), nil
}

func TestJournalWriteErrorIsSticky(t *testing.T) {
	j := NewJournal(&failWriter{n: 1})
	j.Event("ok")
	j.Event("fails")
	j.Event("dropped")
	if j.Err() == nil {
		t.Fatal("want sticky error")
	}
	if j.Seq() != 2 {
		t.Errorf("seq = %d; events after the sticky error must not consume sequence numbers", j.Seq())
	}
}

func TestLoggerKeyValueFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "mrsch-test")
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	l.Event("kernel", "set", "avx2", "fma", true, "dim", 64, "wait", 250*time.Microsecond, "note", "has spaces", "empty", "")
	got := buf.String()
	want := `ts=2026-08-08T12:00:00Z component=mrsch-test event=kernel set=avx2 fma=true dim=64 wait=250µs note="has spaces" empty=""` + "\n"
	if got != want {
		t.Errorf("logger line:\n got %q\nwant %q", got, want)
	}
	var nilL *Logger
	nilL.Event("dropped") // must not panic
}

func TestHTTPHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve_decisions_total").Add(42)
	reg.Gauge("serve_model_version").Set(3)
	h := reg.Histogram("serve_decision_latency_ns")
	for i := int64(0); i < 1000; i++ {
		h.Record(i * 1000)
	}
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"serve_decisions_total 42\n",
		"serve_model_version 3\n",
		"serve_decision_latency_ns_count 1000\n",
		"serve_decision_latency_ns_p50 ",
		"serve_decision_latency_ns_p99 ",
		"serve_decision_latency_ns_p999 ",
		"serve_decision_latency_ns_max 999000\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics text missing %q in:\n%s", want, body)
		}
	}

	code, body = get("/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json: %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics json: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 42 || len(snap.Histograms) != 1 {
		t.Errorf("json snapshot: %+v", snap)
	}

	code, body = get("/health")
	if code != http.StatusOK {
		t.Fatalf("/health: %d", code)
	}
	var health struct {
		Status    string  `json:"status"`
		UptimeSec float64 `json:"uptime_sec"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil || health.Status != "ok" {
		t.Errorf("/health: %q err=%v", body, err)
	}

	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}
}

func TestListenAndServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up").Inc()
	srv, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "up 1\n") {
		t.Errorf("metrics over the wire: %q", b)
	}
}
