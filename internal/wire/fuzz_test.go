package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzDecodeFrame drives ReadFrame with arbitrary byte streams. The
// invariants mirror the checkpoint-decoder fuzz style: no panic on any
// input, every failure is either a clean io.EOF or a loud error, and any
// payload that does decode re-encodes to a frame that decodes back to the
// same bytes (round-trip stability). The seeded corpus covers the frame
// damage taxonomy: valid frames, bitflips, truncations, an oversize length,
// and raw garbage.
func FuzzDecodeFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := frame([]byte("seed payload for the shared frame codec"))

	f.Add([]byte(nil))
	f.Add(valid)
	f.Add(frame(nil))
	f.Add(valid[:len(valid)/2]) // truncated mid-payload
	f.Add(valid[:4])            // truncated mid-header
	bitflip := append([]byte(nil), valid...)
	bitflip[len(bitflip)-1] ^= 0x40
	f.Add(bitflip)
	overlong := append([]byte(nil), valid...)
	overlong[0] = 0xFF // declared length far past the actual bytes
	f.Add(overlong)
	f.Add([]byte("MRSCHWIRE"))
	f.Add(append(frame([]byte("one")), frame([]byte("two"))...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := ReadFrame(r)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrCorruptFrame) &&
					!bytes.Contains([]byte(err.Error()), []byte("wire:")) {
					t.Fatalf("unclassified error: %v", err)
				}
				return // EOF or damage both end the stream; never panic
			}
			// A decoded payload must survive a re-encode round trip.
			var buf bytes.Buffer
			if err := WriteFrame(&buf, payload); err != nil {
				t.Fatalf("re-encode of %d decoded bytes: %v", len(payload), err)
			}
			again, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if !bytes.Equal(again, payload) {
				t.Fatalf("round trip changed payload: %d -> %d bytes", len(payload), len(again))
			}
		}
	})
}
