// Package wire implements the length-prefixed checksummed frame codec shared
// by the distributed-campaign protocol (internal/distrib) and the decision
// service (internal/serve). Every message travels in one frame:
//
//	uint32 payload length (big endian)
//	uint32 CRC-32 (IEEE) of the payload
//	payload bytes (one self-contained encoding, typically an independent
//	gob stream)
//
// Frames are self-delimiting and independently decodable, so a single
// damaged frame is detectable (CRC failure) without desynchronizing a
// healthy stream, and a truncated frame surfaces as an unexpected EOF.
// There is no in-band resynchronization: a receiver that sees ErrCorruptFrame
// treats the peer as corrupt and abandons the connection. Both protocols
// build their typed messages on top of these raw payload frames.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFrameBytes bounds a frame's declared payload length. A corrupt length
// prefix must not make the receiver allocate gigabytes before the CRC gets a
// chance to reject the payload.
const MaxFrameBytes = 64 << 20

// ErrCorruptFrame marks a frame whose length or checksum is damaged (callers
// layering an encoding on top wrap their decode failures in it too). Receivers
// map it to peer death: the stream cannot be trusted past the damage.
var ErrCorruptFrame = errors.New("wire: corrupt frame")

// Checksum returns the CRC-32 (IEEE) of the payload — the sum WriteFrame
// stamps into the header, exported so fault harnesses can build deliberately
// mismatched frames via WriteRawFrame.
func Checksum(payload []byte) uint32 { return crc32.ChecksumIEEE(payload) }

// WriteFrame writes payload as one well-formed frame. Writers serialize
// frames themselves (callers that interleave frames from multiple goroutines
// hold a mutex around the call).
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte frame bound", len(payload), MaxFrameBytes)
	}
	return WriteRawFrame(w, payload, len(payload), Checksum(payload))
}

// WriteRawFrame writes a frame with the length and checksum the header
// claims, independent of the actual payload bytes. Fault harnesses call it
// with a deliberately wrong combination (flipped payload byte, over-long
// declared length) to manufacture corrupt and truncated frames; every healthy
// path goes through WriteFrame.
func WriteRawFrame(w io.Writer, payload []byte, declaredLen int, sum uint32) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(declaredLen))
	binary.BigEndian.PutUint32(hdr[4:8], sum)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame and returns its verified payload. io.EOF passes
// through untouched so callers can distinguish a clean close from damage; any
// length or checksum problem wraps ErrCorruptFrame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: declared payload of %d bytes exceeds the %d-byte bound", ErrCorruptFrame, n, MaxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload (%d bytes declared): %v", ErrCorruptFrame, n, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (header %08x, payload %08x)", ErrCorruptFrame, sum, got)
	}
	return payload, nil
}
