package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func mustFrame(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("the quick brown fox"),
		bytes.Repeat([]byte{0xAB, 0x00, 0xFF}, 10000),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	// All frames decode back, in order, from one contiguous stream.
	for i, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d round-tripped to %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("drained stream returned %v, want io.EOF", err)
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	frame := mustFrame(t, []byte("precious payload bytes"))
	for bit := 0; bit < len(frame)*8; bit += 7 {
		bad := append([]byte(nil), frame...)
		bad[bit/8] ^= 1 << (bit % 8)
		_, err := ReadFrame(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("bitflip at %d decoded cleanly", bit)
		}
		// Header-length flips can turn into truncation errors; both wrap
		// ErrCorruptFrame.
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("bitflip at %d: error %v does not wrap ErrCorruptFrame", bit, err)
		}
	}
}

func TestTruncatedFrameDetected(t *testing.T) {
	frame := mustFrame(t, []byte("will be cut short"))
	for cut := 1; cut < len(frame); cut++ {
		_, err := ReadFrame(bytes.NewReader(frame[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
		if err == io.EOF {
			t.Fatalf("truncation at %d surfaced as clean io.EOF", cut)
		}
	}
}

func TestDamageDoesNotDesyncEarlierFrames(t *testing.T) {
	// A healthy frame followed by a damaged one: the first decodes, the
	// second fails loudly. (Past the damage the stream is abandoned by
	// contract; what matters is that damage never corrupts earlier frames.)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("healthy")); err != nil {
		t.Fatal(err)
	}
	bad := []byte("damaged")
	if err := WriteRawFrame(&buf, bad, len(bad), Checksum(bad)^0xFFFF); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil || string(got) != "healthy" {
		t.Fatalf("healthy frame: %q, %v", got, err)
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("damaged frame returned %v, want ErrCorruptFrame", err)
	}
}

func TestOversizeDeclaredLengthRejected(t *testing.T) {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], MaxFrameBytes+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("oversize length returned %v, want ErrCorruptFrame", err)
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversize error %q does not name the bound", err)
	}
}

func TestOversizePayloadRefusedAtWrite(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrame(&buf, make([]byte, MaxFrameBytes+1))
	if err == nil {
		t.Fatal("oversize payload written cleanly")
	}
	if buf.Len() != 0 {
		t.Fatalf("oversize write left %d bytes on the stream", buf.Len())
	}
}

func TestCleanCloseIsEOF(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream returned %v, want io.EOF", err)
	}
	// EOF mid-header is damage, not a clean close.
	frame := mustFrame(t, []byte("abc"))
	if _, err := ReadFrame(bytes.NewReader(frame[:4])); err == io.EOF || err == nil {
		t.Fatalf("mid-header EOF returned %v, want a loud error", err)
	}
}
