package workload

import (
	"fmt"
	"math/rand"
)

// Markov-modulated bursty arrivals — the burst scenario axis. The base
// generator's exponential gaps are scaled by a two-state (calm/burst)
// Markov chain advanced once per accepted arrival, the discrete-time form
// of a Markov-modulated Poisson process: calm stretches at one rate, burst
// runs at another, with geometric run lengths. The chain consumes its own
// seeded rng stream, so the job-body draws (sizes, runtimes, walltimes,
// diurnal thinning) of a modulated trace are identical to the unmodulated
// one — and a chain whose two scales are equal reproduces the plain
// interarrival-scaled trace byte for byte (the metamorphic identity the
// generator test suite pins).

// Burst parameterizes the modulation: the calm/burst gap-scale pair and the
// per-arrival transition probabilities. Scales multiply the generator's
// MeanInterarrival while the chain sits in that state (smaller = faster
// arrivals); PEnter/PExit are P(calm→burst) and P(burst→calm) evaluated
// after each arrival, giving geometric run lengths with means 1/PEnter and
// 1/PExit arrivals.
type Burst struct {
	CalmScale  float64
	BurstScale float64
	PEnter     float64
	PExit      float64
}

// Validate rejects parameters that would hang or corrupt the generator.
func (b Burst) Validate() error {
	if !(b.CalmScale > 0) || !(b.BurstScale > 0) {
		return fmt.Errorf("workload: burst gap scales must be positive (calm %g, burst %g)", b.CalmScale, b.BurstScale)
	}
	if b.PEnter < 0 || b.PEnter > 1 || b.PExit <= 0 || b.PExit > 1 {
		return fmt.Errorf("workload: burst transition probabilities outside range (enter %g, exit %g)", b.PEnter, b.PExit)
	}
	return nil
}

// StationaryBurstFrac is the chain's stationary probability of the burst
// state: PEnter/(PEnter+PExit).
func (b Burst) StationaryBurstFrac() float64 {
	return b.PEnter / (b.PEnter + b.PExit)
}

// MeanGapScale is the stationary expectation of the per-arrival gap scale —
// the factor by which modulation changes the trace's long-run mean
// interarrival (and so, inversely, its job count).
func (b Burst) MeanGapScale() float64 {
	p := b.StationaryBurstFrac()
	return (1-p)*b.CalmScale + p*b.BurstScale
}

// burstChain is the per-trace chain state. Its rng stream is private to the
// chain: advancing it never perturbs the generator's main stream.
type burstChain struct {
	b       Burst
	rng     *rand.Rand
	inBurst bool
}

// burstSeedMix decorrelates the chain's stream from the generator's other
// Seed-derived streams.
const burstSeedMix = 0x62757273 // "burs"

func newBurstChain(b Burst, seed int64) *burstChain {
	if err := b.Validate(); err != nil {
		panic(err) // misuse: specs validate before reaching the generator
	}
	c := &burstChain{b: b, rng: rand.New(rand.NewSource(seed ^ burstSeedMix))}
	// Start from the stationary distribution so short traces aren't biased
	// toward the calm state.
	c.inBurst = c.rng.Float64() < b.StationaryBurstFrac()
	return c
}

// next returns the gap scale for the upcoming arrival and then advances the
// chain one step.
func (c *burstChain) next() float64 {
	scale := c.b.CalmScale
	if c.inBurst {
		scale = c.b.BurstScale
	}
	if c.inBurst {
		if c.rng.Float64() < c.b.PExit {
			c.inBurst = false
		}
	} else {
		if c.rng.Float64() < c.b.PEnter {
			c.inBurst = true
		}
	}
	return scale
}
