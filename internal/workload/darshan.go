package workload

import (
	"math"
	"math/rand"

	"repro/internal/job"
)

// Darshan-derived burst-buffer statistics from §IV-A: 40% of jobs have an
// I/O record, 17.18% of all jobs moved more than 1 GB, and transferred
// volumes (assigned as burst-buffer requests) range from 1 GB to 285 TB.
const (
	darshanRecordFrac = 0.40
	darshanOverGBFrac = 0.1718
	darshanMaxTB      = 285.0
	darshanMinGB      = 1.0
)

// AssignDarshanBB plays the role of the paper's Darshan trace join: it
// gives each job a burst-buffer request in TB (resource index 1) derived
// from a synthetic I/O volume. Only jobs that "have an I/O record and moved
// more than 1 GB" receive a non-zero request, reproducing the published
// population fractions. Volumes are log-uniform over [1 GB, 285 TB].
// Requests are expressed in units of the system's burst-buffer capacity so
// scaled replicas see the same contention.
//
// It returns the pool of assigned requests (in TB at full Theta scale),
// which the Table III scenarios later resample from.
func AssignDarshanBB(jobs []*job.Job, bbCapacity int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	var pool []float64
	for _, j := range jobs {
		if len(j.Demand) < 2 {
			continue
		}
		j.Demand[1] = 0
		if rng.Float64() >= darshanRecordFrac {
			continue // no Darshan record
		}
		// Among recorded jobs, the fraction moving >1GB is 17.18/40.
		if rng.Float64() >= darshanOverGBFrac/darshanRecordFrac {
			continue // tiny I/O: below the 1 GB floor, no BB request
		}
		tb := sampleLogUniformTB(rng)
		pool = append(pool, tb)
		j.Demand[1] = tbToUnits(tb, bbCapacity)
	}
	return pool
}

// sampleLogUniformTB draws a volume log-uniformly between 1 GB and 285 TB,
// returned in TB.
func sampleLogUniformTB(rng *rand.Rand) float64 {
	loTB := darshanMinGB / 1000.0
	hiTB := darshanMaxTB
	return loTB * math.Exp(rng.Float64()*math.Log(hiTB/loTB))
}

// tbToUnits converts a full-Theta-scale TB request into units on a system
// with the given burst-buffer capacity (1 TB units at full scale), scaling
// by capacity so fractions are preserved, with a 1-unit floor for non-zero
// requests and a capacity cap.
func tbToUnits(tb float64, bbCapacity int) int {
	if tb <= 0 {
		return 0
	}
	u := int(math.Round(tb * float64(bbCapacity) / float64(ThetaBBTB)))
	if u < 1 {
		u = 1
	}
	if u > bbCapacity {
		u = bbCapacity
	}
	return u
}
