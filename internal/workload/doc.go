// Package workload builds the traces the paper evaluates on. The original
// study uses a five-month 2018 production log from Theta at ALCF extended
// with burst-buffer requests mined from Darshan I/O records (§IV-A); that
// log is not redistributable, so this package generates a synthetic
// Theta-like base trace matching the published statistics (machine scale,
// job-size mixture, lognormal runtimes, diurnal/weekly arrival modulation,
// overestimated walltimes) and then applies the exact workload
// transformations of Table III (S1-S5) and the power extension of §V-E
// (S6-S10). Everything is parameterized by a scale divisor so the full
// 4392-node machine and CI-sized replicas share one code path, with demands
// expressed as capacity fractions to preserve contention levels.
//
// # Realism axes
//
// Beyond the uniform Table III stressors, three axes push a trace toward
// what production logs look like. Zipf user skew (zipf.go) labels jobs
// with owners drawn from a Zipf distribution over a fixed population —
// pure accounting metadata, since schedulers are user-blind by the
// internal/job contract. Bursty arrivals (burst.go) modulate the
// generator's exponential gaps with a two-state calm/burst Markov chain,
// the discrete-time form of a Markov-modulated Poisson process; the chain
// draws from a private stream, so a modulated trace's job bodies are
// byte-identical to the unmodulated one, a chain with equal scales is
// byte-identical to plain interarrival scaling, and unit scales are a
// no-op — the metamorphic identities generators_test.go pins. Trace
// ingestion (traces.go) replays a committed SWF excerpt from another
// machine (LoadTraceBase): demands are rescaled as source-machine
// fractions onto the target system, arrivals rebased and gap-normalized,
// users preserved — the T1-T5 scenario family that measures cross-machine
// policy transfer. All three are driven by internal/scenario spec fields
// (zipf_theta/zipf_users, burst, trace) and their variant syntax
// ("S4@zipf=0.9,burst=5x0.25").
//
// # Determinism and seeding
//
// Every generator and transform in this package takes an explicit seed and
// builds a private rand.Rand from it; no function consults global randomness
// or the wall clock, so a (config, seed) pair always yields the same trace,
// the same Table III transformation, and the same curriculum job sets. The
// experiment campaign derives all of these seeds from one Scale.Seed with
// fixed offsets (internal/experiments), and parallel training/sweep
// episodes keep their own per-episode streams on top — see the
// internal/rollout package documentation for that contract.
package workload
