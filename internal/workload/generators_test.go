package workload

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/job"
)

// Property and metamorphic suite for the realistic-workload axes: the Zipf
// user-skew assignment, the Markov-modulated bursty arrival process, and
// the SWF trace ingestion. The metamorphic identities are byte-exact by
// design (separate rng streams, identical arithmetic), so they are asserted
// with DeepEqual, not tolerances.

func dummyJobs(n int) []*job.Job {
	jobs := make([]*job.Job, n)
	for i := range jobs {
		jobs[i] = &job.Job{
			ID:       i + 1,
			Submit:   float64(i) * 10,
			Runtime:  600,
			Walltime: 900,
			Demand:   []int{1 + i%7, 0},
		}
	}
	return jobs
}

// equalExceptUser strips User before comparing: the zipf axis must touch
// ownership and nothing else.
func equalExceptUser(a, b []*job.Job) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ca, cb := a[i].Clone(), b[i].Clone()
		ca.User, cb.User = 0, 0
		if !reflect.DeepEqual(ca, cb) {
			return false
		}
	}
	return true
}

func TestZipfPMFShape(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.9, 0.99} {
		p := ZipfPMF(64, theta)
		sum := 0.0
		for k, v := range p {
			sum += v
			if k > 0 && v > p[k-1]+1e-15 {
				t.Fatalf("theta %g: pmf not non-increasing at rank %d", theta, k+1)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("theta %g: pmf sums to %g", theta, sum)
		}
	}
	uniform := ZipfPMF(64, 0)
	for k, v := range uniform {
		if math.Abs(v-1.0/64) > 1e-12 {
			t.Fatalf("theta 0 rank %d: p = %g, want uniform 1/64", k+1, v)
		}
	}
	for _, bad := range []func(){
		func() { ZipfPMF(0, 0.5) },
		func() { ZipfPMF(10, -1) },
		func() { ZipfPMF(10, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("ZipfPMF accepted invalid parameters")
				}
			}()
			bad()
		}()
	}
}

// The core distributional property: empirical user frequencies over a large
// assignment match the Zipf pmf, across the theta ladder, measured as the
// sup distance between empirical and model CDFs.
func TestZipfEmpiricalFrequenciesMatchPMF(t *testing.T) {
	const users, n = 64, 100000
	jobs := dummyJobs(n)
	for _, theta := range []float64{0, 0.5, 0.9, 0.99} {
		out := AssignZipfUsers(jobs, users, theta, 42)
		counts := make([]float64, users)
		for _, j := range out {
			if j.User < 1 || j.User > users {
				t.Fatalf("theta %g: user %d outside 1..%d", theta, j.User, users)
			}
			counts[j.User-1]++
		}
		pmf := ZipfPMF(users, theta)
		sup, empCDF, modelCDF := 0.0, 0.0, 0.0
		for k := 0; k < users; k++ {
			empCDF += counts[k] / n
			modelCDF += pmf[k]
			if d := math.Abs(empCDF - modelCDF); d > sup {
				sup = d
			}
		}
		if sup > 0.01 {
			t.Fatalf("theta %g: sup |empirical CDF - model CDF| = %g, want < 0.01", theta, sup)
		}
		if !equalExceptUser(jobs, out) {
			t.Fatalf("theta %g: assignment perturbed non-ownership fields", theta)
		}
	}
}

// Metamorphic identity: theta = 0 is exactly the uniform assignment — each
// job's owner is the same rank an independent uniform draw over the same
// stream selects (64 divides the double mantissa evenly, so the cumsum CDF
// carries no rounding at all and the two computations must agree bit for
// bit).
func TestZipfZeroMatchesUniformReference(t *testing.T) {
	const users, seed = 64, 7
	jobs := dummyJobs(10000)
	out := AssignZipfUsers(jobs, users, 0, seed)
	rng := rand.New(rand.NewSource(seed))
	for i, j := range out {
		want := 1 + int(rng.Float64()*users)
		if want > users {
			want = users
		}
		if j.User != want {
			t.Fatalf("job %d: user %d, want uniform reference %d", i, j.User, want)
		}
	}
}

func TestZipfDisabledAndDeterminism(t *testing.T) {
	jobs := dummyJobs(500)
	off := AssignZipfUsers(jobs, 0, 0.9, 3)
	if !reflect.DeepEqual(off, job.CloneAll(jobs)) {
		t.Fatal("users <= 0 must return plain clones")
	}
	a := AssignZipfUsers(jobs, 32, 0.9, 11)
	b := AssignZipfUsers(jobs, 32, 0.9, 11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("assignment is not deterministic for a fixed seed")
	}
	c := AssignZipfUsers(jobs, 32, 0.9, 12)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical assignments")
	}
	// Output is detached: mutating it must not touch the input.
	a[0].User = 999
	a[0].Submit = -1
	if jobs[0].User != 0 || jobs[0].Submit != 0 {
		t.Fatal("assignment aliases the input jobs")
	}
}

func TestBurstValidate(t *testing.T) {
	good := Burst{CalmScale: 1, BurstScale: 0.25, PEnter: 0.02, PExit: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Burst{
		{CalmScale: 0, BurstScale: 1, PEnter: 0.1, PExit: 0.1},
		{CalmScale: 1, BurstScale: -1, PEnter: 0.1, PExit: 0.1},
		{CalmScale: 1, BurstScale: 1, PEnter: -0.1, PExit: 0.1},
		{CalmScale: 1, BurstScale: 1, PEnter: 1.5, PExit: 0.1},
		{CalmScale: 1, BurstScale: 1, PEnter: 0.1, PExit: 0},
		{CalmScale: 1, BurstScale: math.NaN(), PEnter: 0.1, PExit: 0.1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", bad)
		}
	}
}

// Chain-level properties against the closed forms: long-run burst occupancy
// equals PEnter/(PEnter+PExit) and burst run lengths are geometric with
// mean 1/PExit.
func TestBurstChainStationaryOccupancyAndRunLengths(t *testing.T) {
	b := Burst{CalmScale: 1, BurstScale: 0.25, PEnter: 0.02, PExit: 0.08}
	chain := newBurstChain(b, 99)
	const steps = 200000
	inBurst := 0
	var runs []int
	run := 0
	for i := 0; i < steps; i++ {
		if chain.next() == b.BurstScale {
			inBurst++
			run++
		} else if run > 0 {
			runs = append(runs, run)
			run = 0
		}
	}
	wantOcc := b.StationaryBurstFrac()
	occ := float64(inBurst) / steps
	if math.Abs(occ-wantOcc) > 0.01 {
		t.Fatalf("burst occupancy %g, want stationary %g +-0.01", occ, wantOcc)
	}
	if len(runs) < 100 {
		t.Fatalf("only %d burst runs observed", len(runs))
	}
	meanRun := 0.0
	for _, r := range runs {
		meanRun += float64(r)
	}
	meanRun /= float64(len(runs))
	wantRun := 1 / b.PExit
	if math.Abs(meanRun-wantRun)/wantRun > 0.05 {
		t.Fatalf("mean burst run length %g, want geometric mean %g +-5%%", meanRun, wantRun)
	}
}

// Trace-level rate property: modulation changes the long-run job count by
// 1/MeanGapScale (denser gaps -> proportionally more arrivals through the
// same thinning profile).
func TestBurstJobCountMatchesMeanGapScale(t *testing.T) {
	sys := ThetaScaled(32)
	cfg := GeneratorConfig{System: sys, Duration: 4 * 86400, MeanInterarrival: 60, Seed: 5}
	plain := GenerateBase(cfg)

	b := Burst{CalmScale: 1, BurstScale: 0.25, PEnter: 0.03, PExit: 0.12}
	cfg.Burst = &b
	bursty := GenerateBase(cfg)

	wantRatio := 1 / b.MeanGapScale()
	ratio := float64(len(bursty)) / float64(len(plain))
	if math.Abs(ratio-wantRatio)/wantRatio > 0.10 {
		t.Fatalf("bursty/plain job count ratio %g (n=%d/%d), want 1/MeanGapScale = %g +-10%%",
			ratio, len(bursty), len(plain), wantRatio)
	}
}

// Metamorphic identity, byte-exact: a chain whose two scales are equal is
// indistinguishable from plain interarrival scaling — the chain draws from
// its own stream, and the per-arrival product computes the same double the
// premultiplied path does.
func TestBurstEqualScalesIsInterarrivalScaling(t *testing.T) {
	sys := ThetaScaled(32)
	const scale = 1.3
	modulated := GenerateBase(GeneratorConfig{
		System: sys, Duration: 2 * 86400, MeanInterarrival: 75, Seed: 21,
		Burst: &Burst{CalmScale: scale, BurstScale: scale, PEnter: 0.05, PExit: 0.1},
	})
	premultiplied := GenerateBase(GeneratorConfig{
		System: sys, Duration: 2 * 86400, MeanInterarrival: 75 * scale, Seed: 21,
	})
	if !reflect.DeepEqual(modulated, premultiplied) {
		t.Fatalf("equal-scale chain is not byte-identical to interarrival scaling (%d vs %d jobs)",
			len(modulated), len(premultiplied))
	}
}

// Metamorphic identity, byte-exact: unit scales reproduce the unmodulated
// trace exactly.
func TestBurstUnitScalesIsIdentity(t *testing.T) {
	sys := ThetaScaled(32)
	cfg := GeneratorConfig{System: sys, Duration: 2 * 86400, MeanInterarrival: 75, Seed: 33}
	plain := GenerateBase(cfg)
	cfg.Burst = &Burst{CalmScale: 1, BurstScale: 1, PEnter: 0.05, PExit: 0.1}
	if !reflect.DeepEqual(plain, GenerateBase(cfg)) {
		t.Fatal("unit-scale chain perturbed the trace")
	}
}

func TestBurstGeneratorDeterminism(t *testing.T) {
	sys := ThetaScaled(64)
	cfg := GeneratorConfig{
		System: sys, Duration: 86400, MeanInterarrival: 90, Seed: 8,
		Burst: &Burst{CalmScale: 1, BurstScale: 0.2, PEnter: 0.04, PExit: 0.1},
	}
	a, b := GenerateBase(cfg), GenerateBase(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("bursty generation is not deterministic for a fixed seed")
	}
	cfg.Seed = 9
	if reflect.DeepEqual(a, GenerateBase(cfg)) {
		t.Fatal("different seeds produced identical bursty traces")
	}
}

// The satellite contract for NoiseWalltimes: sigma <= 0 is an exact
// identity — byte-equal clones, no aliasing, and no rng consumption (so the
// result cannot depend on the seed).
func TestNoiseWalltimesZeroSigmaIdentity(t *testing.T) {
	jobs := dummyJobs(200)
	jobs[3].Walltime = 1234.5 // off the 15-minute grid: must survive untouched
	for _, sigma := range []float64{0, -1} {
		out := NoiseWalltimes(jobs, sigma, 42)
		if len(out) != len(jobs) {
			t.Fatalf("sigma %g: %d jobs out, want %d", sigma, len(out), len(jobs))
		}
		for i := range out {
			if out[i] == jobs[i] {
				t.Fatalf("sigma %g: job %d aliases the input", sigma, i)
			}
			if !reflect.DeepEqual(out[i], jobs[i].Clone()) {
				t.Fatalf("sigma %g: job %d not byte-equal to its input clone", sigma, i)
			}
		}
		other := NoiseWalltimes(jobs, sigma, 4242)
		if !reflect.DeepEqual(out, other) {
			t.Fatalf("sigma %g: identity depends on the seed (rng was drawn)", sigma)
		}
	}
	// Positive sigma still perturbs (the identity is the special case, not
	// a dead code path).
	noisy := NoiseWalltimes(jobs, 0.5, 42)
	if equalExceptUser(jobs, noisy) {
		t.Fatal("sigma 0.5 changed nothing")
	}
}

func TestLoadTraceBaseBuiltin(t *testing.T) {
	sys := ThetaScaled(64)
	const meanIA = 75.0
	jobs, err := LoadTraceBase("t1", sys, 1e9, meanIA) // duration beyond the trace: no truncation
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 100 {
		t.Fatalf("only %d jobs ingested", len(jobs))
	}
	again, err := LoadTraceBase("t1", sys, 1e9, meanIA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, again) {
		t.Fatal("trace ingestion is not deterministic")
	}
	users := 0
	for i, j := range jobs {
		if err := j.Validate(nil); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if j.Demand[0] < 1 || j.Demand[0] > sys.Capacities[0] {
			t.Fatalf("job %d node demand %d outside [1,%d]", i, j.Demand[0], sys.Capacities[0])
		}
		if len(j.Demand) != len(sys.Capacities) {
			t.Fatalf("job %d demand arity %d, want %d", i, len(j.Demand), len(sys.Capacities))
		}
		if j.Walltime < j.Runtime {
			t.Fatalf("job %d walltime %g below runtime %g", i, j.Walltime, j.Runtime)
		}
		if i > 0 && j.Submit < jobs[i-1].Submit {
			t.Fatalf("job %d submits out of order", i)
		}
		if j.User > 0 {
			users++
		}
	}
	if users == 0 {
		t.Fatal("trace user ids were dropped")
	}
	if jobs[0].Submit != 0 {
		t.Fatalf("arrivals not rebased: first submit %g", jobs[0].Submit)
	}
	// The gap rescale is exact when nothing is truncated.
	gap := jobs[len(jobs)-1].Submit / float64(len(jobs)-1)
	if math.Abs(gap-meanIA)/meanIA > 1e-9 {
		t.Fatalf("mean submit gap %g, want %g", gap, meanIA)
	}

	// Truncation: a short duration keeps only in-range arrivals and still
	// returns a valid prefix.
	short, err := LoadTraceBase("t1", sys, meanIA*20, meanIA)
	if err != nil {
		t.Fatal(err)
	}
	if len(short) >= len(jobs) || len(short) == 0 {
		t.Fatalf("truncated load kept %d of %d jobs", len(short), len(jobs))
	}
	for _, j := range short {
		if j.Submit >= meanIA*20 {
			t.Fatalf("job submits at %g beyond the %g duration", j.Submit, float64(meanIA*20))
		}
	}
}

func TestLoadTraceBaseErrors(t *testing.T) {
	sys := ThetaScaled(64)
	if _, err := LoadTraceBase("no-such-trace", sys, 1e9, 75); err == nil {
		t.Fatal("unknown trace ref accepted")
	}
	if _, err := LoadTraceBase("t1", sys, 0, 75); err == nil {
		t.Fatal("a duration excluding every record must fail loudly")
	}
}

func TestTraceByName(t *testing.T) {
	tr, ok := TraceByName("t1")
	if !ok || tr.Nodes <= 0 || tr.ProcsPerNode <= 0 {
		t.Fatalf("builtin t1 missing or malformed: %+v", tr)
	}
	if _, ok := TraceByName("t9"); ok {
		t.Fatal("TraceByName resolved a nonexistent trace")
	}
}
