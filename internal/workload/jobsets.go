package workload

import (
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/job"
)

// This file builds the three curriculum job-set types of §III-D / §V-B:
// sampled sets (random jobs from the training trace with controlled Poisson
// arrivals — the easiest learning environment), real sets (contiguous slices
// of the trace with its natural burstiness), and synthetic sets (fresh
// generator output mimicking the trace's patterns — unseen states).

// SampledSets draws n sets of size jobs each from the training trace,
// replacing arrivals with a Poisson process whose mean inter-arrival matches
// the trace average.
func SampledSets(train []*job.Job, n, size int, seed int64) [][]*job.Job {
	rng := rand.New(rand.NewSource(seed))
	mean := meanInterarrival(train)
	sets := make([][]*job.Job, n)
	for s := range sets {
		set := make([]*job.Job, size)
		t := 0.0
		for i := range set {
			src := train[rng.Intn(len(train))].Clone()
			t += rng.ExpFloat64() * mean
			src.ID = i + 1
			src.Submit = t
			set[i] = src
		}
		sets[s] = set
	}
	return sets
}

// RealSets slices the training trace into n contiguous windows of size jobs
// (wrapping if the trace is short), shifting each window's arrivals to start
// at zero while preserving relative spacing.
func RealSets(train []*job.Job, n, size int) [][]*job.Job {
	sets := make([][]*job.Job, n)
	for s := range sets {
		start := (s * size) % maxInt(1, len(train))
		set := make([]*job.Job, 0, size)
		base := -1.0
		for i := 0; i < size; i++ {
			src := train[(start+i)%len(train)]
			j := src.Clone()
			if base < 0 {
				base = j.Submit
			}
			j.ID = i + 1
			j.Submit = j.Submit - base
			if j.Submit < 0 { // wrapped past the end of the trace
				j.Submit = 0
			}
			set = append(set, j)
		}
		job.SortBySubmit(set)
		sets[s] = set
	}
	return sets
}

// SyntheticSets generates n fresh sets of ~size jobs from the Theta-like
// generator (new seeds per set), then reassigns burst buffer with the same
// Darshan statistics — previously unseen arrival patterns and job mixes.
// A non-nil burst modulates each set's arrivals with the two-state chain
// (per-set chain streams), so bursty campaigns train on bursty curricula.
func SyntheticSets(sys cluster.Config, sc Scenario, n, size int, meanGap float64, seed int64, burst *Burst) [][]*job.Job {
	sets := make([][]*job.Job, n)
	for s := range sets {
		gcfg := GeneratorConfig{
			System:           sys,
			Duration:         float64(size) * meanGap * 2,
			MeanInterarrival: meanGap,
			Seed:             seed + int64(s)*101,
			Burst:            burst,
		}
		base := GenerateBase(gcfg)
		if len(base) > size {
			base = base[:size]
		}
		pool := AssignDarshanBB(base, sys.Capacities[1], seed+int64(s)*103)
		sets[s] = Apply(base, pool, sc, sys, seed+int64(s)*107)
	}
	return sets
}

// meanInterarrival returns the average submit gap of a sorted trace
// (fallback 60 s for degenerate traces).
func meanInterarrival(jobs []*job.Job) float64 {
	if len(jobs) < 2 {
		return 60
	}
	span := jobs[len(jobs)-1].Submit - jobs[0].Submit
	if span <= 0 {
		return 60
	}
	return span / float64(len(jobs)-1)
}

// Split divides a trace chronologically into train/validation/test, the
// paper's 3.5 months / 2 weeks / remainder protocol expressed as fractions.
func Split(jobs []*job.Job, trainFrac, validFrac float64) (train, valid, test []*job.Job) {
	n := len(jobs)
	a := int(float64(n) * trainFrac)
	b := a + int(float64(n)*validFrac)
	if a > n {
		a = n
	}
	if b > n {
		b = n
	}
	return jobs[:a], jobs[a:b], jobs[b:]
}

// PaperSplit applies the paper's exact proportions of the five-month log:
// 3.5 months training, 0.5 month validation, 1 month test (fractions of the
// trace duration, mapped to job counts by submit time).
func PaperSplit(jobs []*job.Job) (train, valid, test []*job.Job) {
	if len(jobs) == 0 {
		return nil, nil, nil
	}
	start := jobs[0].Submit
	span := jobs[len(jobs)-1].Submit - start
	if span <= 0 {
		return jobs, nil, nil
	}
	tEnd := start + span*(3.5/5.0)
	vEnd := tEnd + span*(0.5/5.0)
	for _, j := range jobs {
		switch {
		case j.Submit < tEnd:
			train = append(train, j)
		case j.Submit < vEnd:
			valid = append(valid, j)
		default:
			test = append(test, j)
		}
	}
	return train, valid, test
}
