package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/job"
)

// Scenario is one row of Table III: a transformation of the base trace that
// dials burst-buffer contention from light (S1) to heavy (S5).
type Scenario struct {
	Name string
	// BBProb is the fraction of jobs given a burst-buffer request.
	BBProb float64
	// MinTB/MaxTB bound the request sizes drawn from the original request
	// pool (full-Theta TB scale).
	MinTB, MaxTB float64
	// HalveNodes halves each job's node request (S5: less CPU contention).
	HalveNodes bool
}

// Scenarios returns Table III's S1-S5.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "S1", BBProb: 0.50, MinTB: 5, MaxTB: 285},
		{Name: "S2", BBProb: 0.75, MinTB: 5, MaxTB: 285},
		{Name: "S3", BBProb: 0.50, MinTB: 20, MaxTB: 285},
		{Name: "S4", BBProb: 0.75, MinTB: 20, MaxTB: 285},
		{Name: "S5", BBProb: 0.75, MinTB: 20, MaxTB: 285, HalveNodes: true},
	}
}

// ScenarioByName returns the named scenario (S1-S5) or an error.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q", name)
}

// Apply builds a scenario workload from a base trace: every job keeps its
// arrival and runtimes; with probability BBProb it receives a burst-buffer
// request resampled from the original request pool restricted to
// [MinTB, MaxTB] (as Table III prescribes: "the assigned burst buffer
// request is randomly selected from the original requests within a certain
// range"); S5 additionally halves node counts. The input jobs are not
// mutated.
func Apply(base []*job.Job, pool []float64, sc Scenario, sys cluster.Config, seed int64) []*job.Job {
	rng := rand.New(rand.NewSource(seed))
	restricted := restrictPool(pool, sc.MinTB, sc.MaxTB)
	bbCap := sys.Capacities[1]
	nodeCap := sys.Capacities[0]
	out := make([]*job.Job, 0, len(base))
	for _, b := range base {
		j := b.Clone()
		// Rebuild the demand vector at the target system's arity: the base
		// trace may carry extra resource columns (e.g. a power-extended
		// system) that this scenario does not populate.
		nodes := j.Demand[0]
		if sc.HalveNodes {
			nodes = maxInt(1, nodes/2)
		}
		if nodes > nodeCap {
			nodes = nodeCap
		}
		d := make([]int, len(sys.Capacities))
		d[0] = nodes
		if rng.Float64() < sc.BBProb {
			tb := pickTB(restricted, sc, rng)
			d[1] = tbToUnits(tb, bbCap)
		}
		j.Demand = d
		out = append(out, j)
	}
	return out
}

// restrictPool filters the original request pool to [minTB, maxTB].
func restrictPool(pool []float64, minTB, maxTB float64) []float64 {
	var out []float64
	for _, tb := range pool {
		if tb >= minTB && tb <= maxTB {
			out = append(out, tb)
		}
	}
	return out
}

// pickTB draws from the restricted pool, falling back to a log-uniform draw
// over the scenario range when the pool is empty (tiny test traces).
func pickTB(restricted []float64, sc Scenario, rng *rand.Rand) float64 {
	if len(restricted) > 0 {
		return restricted[rng.Intn(len(restricted))]
	}
	return sc.MinTB * math.Exp(rng.Float64()*math.Log(sc.MaxTB/sc.MinTB))
}

// PowerScenario extends a Table III scenario with the §V-E power profiles.
type PowerScenario struct {
	Scenario
	// MinW/MaxW bound the per-node power draw (100-215 W on Theta's KNL).
	MinW, MaxW float64
}

// PowerScenarios returns S6-S10: the S1-S5 workloads with per-node power
// profiles drawn uniformly from 100-215 W (§V-E).
func PowerScenarios() []PowerScenario {
	base := Scenarios()
	out := make([]PowerScenario, len(base))
	for i, sc := range base {
		sc.Name = fmt.Sprintf("S%d", 6+i)
		out[i] = PowerScenario{Scenario: sc, MinW: 100, MaxW: 215}
	}
	return out
}

// ApplyPower builds an S6-S10 workload: the underlying Table III transform
// plus a power demand of nodes x per-node-watts, in the power pool's kW
// units scaled to the system's budget. sys must already include the power
// resource (see WithPower).
func ApplyPower(base []*job.Job, pool []float64, sc PowerScenario, sys cluster.Config, seed int64) []*job.Job {
	return ApplyPowerBudget(base, pool, sc, sys, ThetaPowerBudgetKW, seed)
}

// ApplyPowerBudget is ApplyPower against an explicit full-machine power
// budget in kW: physical watt draws are converted to capacity units
// relative to that budget, so a tighter budget makes the same draw a larger
// fraction of the system — the binding knob behind ScenarioSpec's
// power_budget_kw. sys must carry a matching capacity (WithPowerBudget).
func ApplyPowerBudget(base []*job.Job, pool []float64, sc PowerScenario, sys cluster.Config, budgetKW int, seed int64) []*job.Job {
	if len(sys.Capacities) < 3 {
		panic("workload: ApplyPower requires a power-extended system (WithPower)")
	}
	twoRes := cluster.Config{
		Name:       sys.Name,
		Resources:  sys.Resources[:2],
		Capacities: sys.Capacities[:2],
	}
	jobs := Apply(base, pool, sc.Scenario, twoRes, seed)
	rng := rand.New(rand.NewSource(seed + 7919))
	budget := sys.Capacities[2]
	fullBudgetW := float64(budgetKW*1000) * float64(sys.Capacities[0]) / float64(ThetaNodes)
	for _, j := range jobs {
		perNode := sc.MinW + rng.Float64()*(sc.MaxW-sc.MinW)
		draw := perNode * float64(j.Demand[0])
		units := int(math.Ceil(draw / fullBudgetW * float64(budget)))
		if units < 1 {
			units = 1
		}
		if units > budget {
			units = budget
		}
		j.Demand = append(j.Demand, units)
	}
	return jobs
}
