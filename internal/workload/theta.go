package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/job"
)

// Full-scale Theta constants. The burst-buffer unit count is
// reverse-engineered from the paper's reported state-vector size
// (4W + 2(N1+N2) = 11410 with W=10 and N1=4392 gives N2=1293, i.e. a
// ~1.26-1.29 PB shared burst buffer in 1 TB units).
const (
	ThetaNodes = 4392
	ThetaBBTB  = 1293
	// ThetaPowerBudgetKW is the §V-E system power budget (500 kW).
	ThetaPowerBudgetKW = 500
)

// Theta returns the full-scale two-resource Theta configuration.
func Theta() cluster.Config {
	return cluster.Config{
		Name:       "theta",
		Resources:  []string{"nodes", "bb_tb"},
		Capacities: []int{ThetaNodes, ThetaBBTB},
	}
}

// ThetaScaled returns a 1/div replica of Theta. Demands produced by this
// package are fractions of capacity, so contention is preserved.
func ThetaScaled(div int) cluster.Config {
	if div <= 0 {
		div = 1
	}
	return cluster.Config{
		Name:       fmt.Sprintf("theta/%d", div),
		Resources:  []string{"nodes", "bb_tb"},
		Capacities: []int{maxInt(4, ThetaNodes/div), maxInt(2, ThetaBBTB/div)},
	}
}

// WithPower extends a two-resource configuration with the §V-E power
// resource (1 kW units). The budget scales with the node count so the
// contention ratio matches the full machine's 500 kW.
func WithPower(sys cluster.Config) cluster.Config {
	return WithPowerBudget(sys, ThetaPowerBudgetKW)
}

// WithPowerBudget is WithPower with an explicit full-machine budget in kW
// (scenario specs may tighten or relax the paper's 500 kW).
func WithPowerBudget(sys cluster.Config, budgetKW int) cluster.Config {
	budget := maxInt(2, int(math.Round(float64(budgetKW)*float64(sys.Capacities[0])/float64(ThetaNodes))))
	out := cluster.Config{
		Name:       sys.Name + "+power",
		Resources:  append(append([]string{}, sys.Resources...), "power_kw"),
		Capacities: append(append([]int{}, sys.Capacities...), budget),
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GeneratorConfig controls base-trace synthesis.
type GeneratorConfig struct {
	// System is the target machine (node capacity sets job-size scaling).
	System cluster.Config
	// Duration is the trace length in seconds (the paper uses five months).
	Duration float64
	// MeanInterarrival is the average seconds between submissions at the
	// daily peak; diurnal/weekly modulation thins it.
	MeanInterarrival float64
	// Seed fixes the generator.
	Seed int64
	// Burst, when non-nil, modulates MeanInterarrival with a two-state
	// calm/burst Markov chain advanced once per arrival (see burst.go).
	// The chain draws from its own Seed-derived stream, so every non-gap
	// property of the trace is identical to the unmodulated run.
	Burst *Burst
}

// DefaultGenerator returns experiment-scale settings for a system: a two-day
// trace with a 90 s peak inter-arrival (dense enough to create queueing).
func DefaultGenerator(sys cluster.Config, seed int64) GeneratorConfig {
	return GeneratorConfig{System: sys, Duration: 2 * 86400, MeanInterarrival: 90, Seed: seed}
}

// Job-size mixture: classes as fractions of the machine, loosely matching
// leadership-class logs (many small/debug jobs, a heavy mid-range, rare
// near-full-machine runs).
var sizeClasses = []struct {
	prob     float64
	lo, hi   float64 // fraction of machine nodes
	pow2Bias float64 // probability of rounding to the nearest power of two
}{
	{0.35, 0.001, 0.02, 0.8},
	{0.30, 0.02, 0.08, 0.6},
	{0.20, 0.08, 0.25, 0.4},
	{0.10, 0.25, 0.50, 0.3},
	{0.05, 0.50, 1.00, 0.2},
}

// GenerateBase synthesizes a Theta-like CPU-only trace: jobs have node
// demands and zero demand for every other configured resource (burst buffer
// is added by the Table III scenarios; power by the §V-E case study).
func GenerateBase(cfg GeneratorConfig) []*job.Job {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes := cfg.System.Capacities[0]
	resources := len(cfg.System.Capacities)

	var chain *burstChain
	if cfg.Burst != nil {
		chain = newBurstChain(*cfg.Burst, cfg.Seed)
	}
	var jobs []*job.Job
	id := 1
	t := 0.0
	for {
		mean := cfg.MeanInterarrival
		if chain != nil {
			// Computed per arrival so that equal calm/burst scales yield
			// the exact double the premultiplied (ia-axis) path computes —
			// the byte-identity the generator suite pins.
			mean = cfg.MeanInterarrival * chain.next()
		}
		t += nextInterarrival(rng, mean, t)
		if t >= cfg.Duration {
			break
		}
		n := sampleNodes(rng, nodes)
		runtime := sampleRuntime(rng)
		walltime := sampleWalltime(rng, runtime)
		demand := make([]int, resources)
		demand[0] = n
		jobs = append(jobs, &job.Job{
			ID:       id,
			Submit:   math.Round(t*1000) / 1000,
			Runtime:  runtime,
			Walltime: walltime,
			Demand:   demand,
		})
		id++
	}
	return jobs
}

// nextInterarrival draws an exponential gap thinned by the diurnal and
// weekly activity profile at time t.
func nextInterarrival(rng *rand.Rand, peakMean, t float64) float64 {
	for {
		gap := rng.ExpFloat64() * peakMean
		t += gap
		if rng.Float64() < activity(t) {
			return gap
		}
	}
}

// activity returns the relative submission rate in (0,1]: a Gaussian bump
// peaking mid-afternoon plus a night floor, damped on weekends.
func activity(t float64) float64 {
	hour := math.Mod(t/3600, 24)
	day := int(math.Mod(t/86400, 7)) // day 0 = Monday by convention
	diurnal := 0.35 + 0.65*math.Exp(-(hour-14)*(hour-14)/18)
	weekly := 1.0
	if day >= 5 {
		weekly = 0.55
	}
	return diurnal * weekly
}

func sampleNodes(rng *rand.Rand, machineNodes int) int {
	x := rng.Float64()
	for _, c := range sizeClasses {
		if x < c.prob {
			frac := c.lo * math.Exp(rng.Float64()*math.Log(c.hi/c.lo))
			n := int(math.Round(frac * float64(machineNodes)))
			if n < 1 {
				n = 1
			}
			if n > machineNodes {
				n = machineNodes
			}
			if rng.Float64() < c.pow2Bias {
				n = nearestPow2(n, machineNodes)
			}
			return n
		}
		x -= c.prob
	}
	return 1
}

func nearestPow2(n, cap int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	// Choose the closer of p and 2p (bounded by the machine).
	if 2*p <= cap && (2*p-n) < (n-p) {
		p *= 2
	}
	if p < 1 {
		p = 1
	}
	return p
}

// sampleRuntime draws a lognormal runtime with a one-hour median, clamped to
// [1 min, 12 h] — the span §III-C calls "seconds to days" compressed to keep
// experiment wall-clock practical while preserving the heavy tail.
func sampleRuntime(rng *rand.Rand) float64 {
	r := math.Exp(math.Log(3600) + rng.NormFloat64()*1.1)
	if r < 60 {
		r = 60
	}
	if r > 43200 {
		r = 43200
	}
	return math.Round(r)
}

// sampleWalltime overestimates the runtime by 10-200% and rounds up to the
// 15-minute grid users actually request, capped at 24 h.
func sampleWalltime(rng *rand.Rand, runtime float64) float64 {
	w := runtime * (1.1 + 1.9*rng.Float64())
	w = math.Ceil(w/900) * 900
	if w < runtime {
		w = runtime
	}
	if w > 86400 {
		w = 86400
	}
	return w
}
