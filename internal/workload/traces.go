package workload

import (
	"bytes"
	_ "embed"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/cluster"
	"repro/internal/job"
)

// Second-trace scenario families. The paper evaluates on Theta-derived
// workloads only; the T-family scenarios (internal/scenario) replay an
// ingested SWF log from a different machine instead of the synthetic
// generator, so a Theta-trained policy can be evaluated cross-machine.
// Because the MRSch state vector is sized by the target system's
// capacities, the source machine's node demands are mapped onto the scaled
// system as capacity fractions — the same convention ThetaScaled uses —
// which preserves contention while keeping the state encoding (and thus
// any trained model) unchanged.

// t1SWF is the committed excerpt backing the builtin "t1" trace: a
// synthetic SWF log in the style of a 2048-node, 16-cores-per-node cluster
// (produced by this package's generator under a different machine shape,
// arrival density, and Zipf-skewed user mix — a test fixture, not real
// operational data; see the file header).
//
//go:embed traces/t1.swf
var t1SWF []byte

// TraceInfo describes one builtin ingestible trace.
type TraceInfo struct {
	Name        string
	Description string
	// Nodes and ProcsPerNode describe the source machine: ProcsPerNode
	// divides SWF processor counts into nodes, Nodes is the machine size
	// demands are normalized against when mapping onto a target system.
	Nodes        int
	ProcsPerNode int
	data         []byte
}

// BuiltinTraces lists the traces LoadTraceBase resolves by name.
func BuiltinTraces() []TraceInfo {
	return []TraceInfo{
		{
			Name:         "t1",
			Description:  "committed excerpt of a 2048-node cluster log (synthetic fixture; cross-machine transfer family)",
			Nodes:        2048,
			ProcsPerNode: 16,
			data:         t1SWF,
		},
	}
}

// TraceByName resolves a builtin trace.
func TraceByName(name string) (TraceInfo, bool) {
	for _, tr := range BuiltinTraces() {
		if tr.Name == name {
			return tr, true
		}
	}
	return TraceInfo{}, false
}

// LoadTraceBase ingests an SWF trace as a base workload for sys: ref is a
// builtin trace name or an SWF file path. Node demands are rescaled from
// the source machine onto sys.Capacities[0] as capacity fractions (clamped
// to [1, capacity]); arrivals are rebased to zero and linearly rescaled so
// the mean submit gap equals meanInterarrival, then truncated at duration —
// the same two knobs that shape the synthetic base trace. Walltimes are
// floored at the runtime (real logs contain underestimates; the generator's
// invariant is estimates bound runtimes). Non-node demands start at zero
// (AssignDarshanBB fills burst buffer, as for generated traces); user ids
// from the log are preserved. The result is deterministic: no rng is
// involved anywhere.
func LoadTraceBase(ref string, sys cluster.Config, duration, meanInterarrival float64) ([]*job.Job, error) {
	var (
		r        io.Reader
		srcNodes int
		ppn      = 1
	)
	if tr, ok := TraceByName(ref); ok {
		r = bytes.NewReader(tr.data)
		srcNodes = tr.Nodes
		ppn = tr.ProcsPerNode
	} else {
		f, err := os.Open(ref)
		if err != nil {
			return nil, fmt.Errorf("workload: trace %q is neither a builtin trace (%v) nor a readable SWF file: %w",
				ref, builtinTraceNames(), err)
		}
		defer f.Close()
		r = f
	}
	jobs, _, err := job.ReadSWF(r, job.SWFOptions{ProcsPerNode: ppn, Resources: len(sys.Capacities)})
	if err != nil {
		return nil, fmt.Errorf("workload: trace %s: %w", ref, err)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("workload: trace %s has no usable records", ref)
	}
	if srcNodes <= 0 {
		// File-path traces don't declare a machine size: use the largest
		// observed job as the normalization base.
		for _, j := range jobs {
			if j.Demand[0] > srcNodes {
				srcNodes = j.Demand[0]
			}
		}
	}

	cap0 := sys.Capacities[0]
	t0 := jobs[0].Submit
	gapScale := 1.0
	if len(jobs) > 1 {
		if span := jobs[len(jobs)-1].Submit - t0; span > 0 {
			gapScale = meanInterarrival * float64(len(jobs)-1) / span
		}
	}
	out := jobs[:0]
	for _, j := range jobs {
		j.Submit = (j.Submit - t0) * gapScale
		if j.Submit >= duration {
			break // sorted: everything after is out of range too
		}
		n := int(math.Round(float64(j.Demand[0]) / float64(srcNodes) * float64(cap0)))
		if n < 1 {
			n = 1
		}
		if n > cap0 {
			n = cap0
		}
		j.Demand[0] = n
		if j.Walltime < j.Runtime {
			j.Walltime = j.Runtime
		}
		out = append(out, j)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: trace %s: no records inside the %gs trace duration", ref, duration)
	}
	return out, nil
}

func builtinTraceNames() []string {
	var names []string
	for _, tr := range BuiltinTraces() {
		names = append(names, tr.Name)
	}
	return names
}
