package workload

import (
	"math"
	"math/rand"

	"repro/internal/job"
)

// NoiseWalltimes returns a copy of jobs whose user walltime estimates are
// perturbed by multiplicative lognormal noise: w' = w * exp(sigma * N(0,1)),
// re-snapped to the 15-minute request grid the generator uses and floored
// at the actual runtime — estimates stay upper bounds of the true runtime,
// the invariant the generator maintains and reservation/backfilling
// planning assumes. sigma <= 0 is an exact identity: fresh clones with
// every field byte-equal to the input and no rng draws consumed, so a
// wtn=0 variant can never drift from its base scenario (and, like the
// sigma > 0 path, the caller may mutate the result without aliasing the
// input). Arrivals, runtimes, and demands are untouched: this is the
// walltime-estimate-noise theta axis, degrading only the information
// schedulers plan with.
func NoiseWalltimes(jobs []*job.Job, sigma float64, seed int64) []*job.Job {
	if sigma <= 0 {
		return job.CloneAll(jobs)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*job.Job, len(jobs))
	for i, j := range jobs {
		c := j.Clone()
		w := c.Walltime * math.Exp(sigma*rng.NormFloat64())
		w = math.Ceil(w/900) * 900
		if w < c.Runtime {
			w = math.Ceil(c.Runtime/900) * 900
		}
		c.Walltime = w
		out[i] = c
	}
	return out
}
