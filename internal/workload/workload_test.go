package workload

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/job"
)

func TestThetaConfigMatchesPaperStateSize(t *testing.T) {
	sys := Theta()
	// §IV-C: 4W + 2(N1+N2) = 11410 with W=10.
	total := sys.Capacities[0] + sys.Capacities[1]
	if 4*10+2*total != 11410 {
		t.Fatalf("Theta units N1+N2 = %d; state would be %d, want 11410", total, 4*10+2*total)
	}
}

func TestThetaScaledPreservesRatio(t *testing.T) {
	sys := ThetaScaled(16)
	if sys.Capacities[0] != ThetaNodes/16 || sys.Capacities[1] != ThetaBBTB/16 {
		t.Fatalf("scaled capacities = %v", sys.Capacities)
	}
	tiny := ThetaScaled(100000) // floors kick in
	if tiny.Capacities[0] < 4 || tiny.Capacities[1] < 2 {
		t.Fatalf("scaled floors violated: %v", tiny.Capacities)
	}
}

func TestWithPowerBudgetScales(t *testing.T) {
	full := WithPower(Theta())
	if full.Capacities[2] != ThetaPowerBudgetKW {
		t.Fatalf("full budget = %d kW, want %d", full.Capacities[2], ThetaPowerBudgetKW)
	}
	half := WithPower(ThetaScaled(2))
	if math.Abs(float64(half.Capacities[2])-250) > 2 {
		t.Fatalf("half-scale budget = %d, want ~250", half.Capacities[2])
	}
	if len(full.Resources) != 3 || full.Resources[2] != "power_kw" {
		t.Fatalf("power resource missing: %v", full.Resources)
	}
}

func TestGenerateBaseValidity(t *testing.T) {
	sys := ThetaScaled(16)
	cfg := DefaultGenerator(sys, 42)
	jobs := GenerateBase(cfg)
	if len(jobs) < 100 {
		t.Fatalf("only %d jobs generated over %v s", len(jobs), cfg.Duration)
	}
	prev := -1.0
	for _, j := range jobs {
		if err := j.Validate(sys.Capacities); err != nil {
			t.Fatal(err)
		}
		if j.Submit < prev {
			t.Fatal("submissions not time-ordered")
		}
		prev = j.Submit
		if j.Walltime < j.Runtime {
			t.Fatalf("job %d walltime %v < runtime %v", j.ID, j.Walltime, j.Runtime)
		}
		if j.Demand[1] != 0 {
			t.Fatal("base trace must be CPU-only")
		}
		if j.Submit >= cfg.Duration {
			t.Fatal("job submitted after trace end")
		}
	}
}

func TestGenerateBaseDeterministic(t *testing.T) {
	sys := ThetaScaled(16)
	a := GenerateBase(DefaultGenerator(sys, 7))
	b := GenerateBase(DefaultGenerator(sys, 7))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Submit != b[i].Submit || a[i].Demand[0] != b[i].Demand[0] || a[i].Runtime != b[i].Runtime {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
	c := GenerateBase(DefaultGenerator(sys, 8))
	same := len(a) == len(c)
	if same {
		identical := true
		for i := range a {
			if a[i].Submit != c[i].Submit {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateBaseSizeMixture(t *testing.T) {
	sys := ThetaScaled(8)
	jobs := GenerateBase(GeneratorConfig{System: sys, Duration: 6 * 86400, MeanInterarrival: 60, Seed: 3})
	small, large := 0, 0
	for _, j := range jobs {
		frac := float64(j.Demand[0]) / float64(sys.Capacities[0])
		if frac <= 0.10 {
			small++
		}
		if frac >= 0.30 {
			large++
		}
	}
	if small <= large {
		t.Fatalf("size mixture inverted: %d small vs %d large", small, large)
	}
	if large == 0 {
		t.Fatal("no large jobs at all; starvation scenarios would be untestable")
	}
}

func TestDarshanAssignmentStatistics(t *testing.T) {
	sys := ThetaScaled(4)
	jobs := GenerateBase(GeneratorConfig{System: sys, Duration: 10 * 86400, MeanInterarrival: 30, Seed: 5})
	pool := AssignDarshanBB(jobs, sys.Capacities[1], 11)
	withBB := 0
	for _, j := range jobs {
		if j.Demand[1] > 0 {
			withBB++
			if j.Demand[1] > sys.Capacities[1] {
				t.Fatal("BB request exceeds capacity")
			}
		}
	}
	frac := float64(withBB) / float64(len(jobs))
	// §IV-A: 17.18% of jobs moved >1GB and get a request.
	if frac < 0.12 || frac > 0.23 {
		t.Fatalf("BB-request fraction = %v, want ~0.17", frac)
	}
	if len(pool) != withBB {
		t.Fatalf("pool has %d entries for %d BB jobs", len(pool), withBB)
	}
	for _, tb := range pool {
		if tb < darshanMinGB/1000 || tb > darshanMaxTB {
			t.Fatalf("pool volume %v TB out of range", tb)
		}
	}
}

func TestTbToUnits(t *testing.T) {
	if got := tbToUnits(0, 100); got != 0 {
		t.Fatalf("zero TB -> %d units", got)
	}
	// Full scale: 1 TB -> 1 unit.
	if got := tbToUnits(1, ThetaBBTB); got != 1 {
		t.Fatalf("1TB at full scale = %d", got)
	}
	// Tiny request on a scaled system floors at 1 unit.
	if got := tbToUnits(0.001, 80); got != 1 {
		t.Fatalf("tiny request = %d, want 1", got)
	}
	// Over-capacity caps.
	if got := tbToUnits(1e6, 80); got != 80 {
		t.Fatalf("huge request = %d, want 80", got)
	}
}

func TestScenarioTableIII(t *testing.T) {
	scs := Scenarios()
	if len(scs) != 5 {
		t.Fatalf("%d scenarios", len(scs))
	}
	wantProb := []float64{0.50, 0.75, 0.50, 0.75, 0.75}
	wantMin := []float64{5, 5, 20, 20, 20}
	for i, sc := range scs {
		if sc.BBProb != wantProb[i] || sc.MinTB != wantMin[i] || sc.MaxTB != 285 {
			t.Fatalf("scenario %s = %+v", sc.Name, sc)
		}
	}
	if !scs[4].HalveNodes || scs[3].HalveNodes {
		t.Fatal("only S5 halves nodes")
	}
	if _, err := ScenarioByName("S3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioByName("S99"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestApplyScenarioProperties(t *testing.T) {
	sys := ThetaScaled(8)
	base := GenerateBase(GeneratorConfig{System: sys, Duration: 6 * 86400, MeanInterarrival: 45, Seed: 9})
	pool := AssignDarshanBB(base, sys.Capacities[1], 10)

	s2, _ := ScenarioByName("S2")
	jobs := Apply(base, pool, s2, sys, 21)
	if len(jobs) != len(base) {
		t.Fatal("job count changed")
	}
	withBB := 0
	for i, j := range jobs {
		if err := j.Validate(sys.Capacities); err != nil {
			t.Fatal(err)
		}
		if j.Demand[0] != base[i].Demand[0] {
			t.Fatal("S2 must not change node demands")
		}
		if j.Demand[1] > 0 {
			withBB++
		}
	}
	frac := float64(withBB) / float64(len(jobs))
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("S2 BB fraction = %v, want ~0.75", frac)
	}
	// Base must not have been mutated.
	bbInBase := 0
	for _, b := range base {
		if b.Demand[1] > 0 {
			bbInBase++
		}
	}
	if float64(bbInBase)/float64(len(base)) > 0.25 {
		t.Fatal("Apply mutated the base trace")
	}
}

func TestS5HalvesNodes(t *testing.T) {
	sys := ThetaScaled(8)
	base := GenerateBase(GeneratorConfig{System: sys, Duration: 3 * 86400, MeanInterarrival: 60, Seed: 13})
	pool := AssignDarshanBB(base, sys.Capacities[1], 14)
	s5, _ := ScenarioByName("S5")
	jobs := Apply(base, pool, s5, sys, 15)
	for i := range jobs {
		want := base[i].Demand[0] / 2
		if want < 1 {
			want = 1
		}
		if jobs[i].Demand[0] != want {
			t.Fatalf("job %d nodes = %d, want %d", i, jobs[i].Demand[0], want)
		}
	}
}

func TestScenarioContentionLadder(t *testing.T) {
	// Aggregate BB demand must increase monotonically-ish across the ladder
	// S1 -> S2 and S3 -> S4 (more jobs with BB) and S3 >= S1 per job (bigger
	// requests). We check the coarse ordering the paper relies on.
	sys := ThetaScaled(8)
	base := GenerateBase(GeneratorConfig{System: sys, Duration: 6 * 86400, MeanInterarrival: 45, Seed: 29})
	pool := AssignDarshanBB(base, sys.Capacities[1], 30)
	demand := func(name string) float64 {
		sc, _ := ScenarioByName(name)
		jobs := Apply(base, pool, sc, sys, 31)
		tot := 0.0
		for _, j := range jobs {
			tot += float64(j.Demand[1]) * j.Walltime
		}
		return tot
	}
	d1, d2, d3, d4 := demand("S1"), demand("S2"), demand("S3"), demand("S4")
	if d2 <= d1 {
		t.Fatalf("S2 (%v) should exceed S1 (%v)", d2, d1)
	}
	if d4 <= d3 {
		t.Fatalf("S4 (%v) should exceed S3 (%v)", d4, d3)
	}
	if d4 <= d1 {
		t.Fatalf("S4 (%v) should exceed S1 (%v)", d4, d1)
	}
}

func TestPowerScenarios(t *testing.T) {
	scs := PowerScenarios()
	if len(scs) != 5 || scs[0].Name != "S6" || scs[4].Name != "S10" {
		t.Fatalf("power scenarios: %+v", scs)
	}
	sys := WithPower(ThetaScaled(8))
	base := GenerateBase(GeneratorConfig{System: sys, Duration: 3 * 86400, MeanInterarrival: 60, Seed: 17})
	pool := AssignDarshanBB(base, sys.Capacities[1], 18)
	jobs := ApplyPower(base, pool, scs[0], sys, 19)
	for _, j := range jobs {
		if len(j.Demand) != 3 {
			t.Fatal("power demand missing")
		}
		if err := j.Validate(sys.Capacities); err != nil {
			t.Fatal(err)
		}
		if j.Demand[2] < 1 {
			t.Fatal("running jobs must draw power")
		}
	}
	// Larger jobs must draw more power on average.
	var smallSum, smallN, largeSum, largeN float64
	for _, j := range jobs {
		if j.Demand[0] <= 4 {
			smallSum += float64(j.Demand[2])
			smallN++
		} else if j.Demand[0] >= 64 {
			largeSum += float64(j.Demand[2])
			largeN++
		}
	}
	if smallN > 0 && largeN > 0 && largeSum/largeN <= smallSum/smallN {
		t.Fatal("power draw not correlated with job size")
	}
}

func TestSampledSetsPoissonArrivals(t *testing.T) {
	sys := ThetaScaled(16)
	base := GenerateBase(DefaultGenerator(sys, 23))
	sets := SampledSets(base, 3, 50, 24)
	if len(sets) != 3 {
		t.Fatalf("%d sets", len(sets))
	}
	for _, set := range sets {
		if len(set) != 50 {
			t.Fatalf("set size %d", len(set))
		}
		prev := -1.0
		for _, j := range set {
			if j.Submit < prev {
				t.Fatal("sampled arrivals out of order")
			}
			prev = j.Submit
		}
	}
	// Mean inter-arrival should be near the trace average.
	mean := meanInterarrival(base)
	got := (sets[0][49].Submit - sets[0][0].Submit) / 49
	if got < mean/3 || got > mean*3 {
		t.Fatalf("sampled inter-arrival %v far from trace mean %v", got, mean)
	}
}

func TestRealSetsPreserveSpacing(t *testing.T) {
	sys := ThetaScaled(16)
	base := GenerateBase(DefaultGenerator(sys, 25))
	sets := RealSets(base, 2, 40)
	for _, set := range sets {
		if len(set) != 40 {
			t.Fatalf("set size %d", len(set))
		}
		if set[0].Submit != 0 {
			t.Fatalf("first job at %v, want 0", set[0].Submit)
		}
	}
	// First set's relative spacing must match the trace.
	for i := 1; i < 10; i++ {
		want := base[i].Submit - base[0].Submit
		if math.Abs(sets[0][i].Submit-want) > 1e-9 {
			t.Fatalf("spacing altered: %v vs %v", sets[0][i].Submit, want)
		}
	}
}

func TestSyntheticSets(t *testing.T) {
	sys := ThetaScaled(16)
	s1, _ := ScenarioByName("S1")
	sets := SyntheticSets(sys, s1, 2, 30, 60, 27, nil)
	for _, set := range sets {
		if len(set) == 0 || len(set) > 30 {
			t.Fatalf("synthetic set size %d", len(set))
		}
		for _, j := range set {
			if err := j.Validate(sys.Capacities); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSplitFractions(t *testing.T) {
	jobs := make([]*job.Job, 100)
	for i := range jobs {
		jobs[i] = &job.Job{ID: i, Submit: float64(i), Runtime: 1, Walltime: 1, Demand: []int{1}}
	}
	train, valid, test := Split(jobs, 0.7, 0.1)
	if len(train) != 70 || len(valid) != 10 || len(test) != 20 {
		t.Fatalf("split = %d/%d/%d", len(train), len(valid), len(test))
	}
}

func TestPaperSplitByTime(t *testing.T) {
	jobs := make([]*job.Job, 1000)
	for i := range jobs {
		jobs[i] = &job.Job{ID: i, Submit: float64(i), Runtime: 1, Walltime: 1, Demand: []int{1}}
	}
	train, valid, test := PaperSplit(jobs)
	if len(train)+len(valid)+len(test) != 1000 {
		t.Fatal("split lost jobs")
	}
	// 3.5/5 = 70%, 0.5/5 = 10%, remainder 20%.
	if math.Abs(float64(len(train))-700) > 10 || math.Abs(float64(len(valid))-100) > 10 {
		t.Fatalf("paper split = %d/%d/%d", len(train), len(valid), len(test))
	}
	if len(PaperSplitEmptyGuard()) != 0 {
		t.Fatal("guard failed")
	}
}

// PaperSplitEmptyGuard exercises the degenerate-input path.
func PaperSplitEmptyGuard() []*job.Job {
	train, _, _ := PaperSplit(nil)
	return train
}

// Property: Apply never produces invalid jobs for any seed.
func TestApplyValidityProperty(t *testing.T) {
	sys := ThetaScaled(16)
	base := GenerateBase(DefaultGenerator(sys, 33))
	pool := AssignDarshanBB(base, sys.Capacities[1], 34)
	f := func(seed int64, which uint8) bool {
		sc := Scenarios()[int(which)%5]
		jobs := Apply(base, pool, sc, sys, seed)
		for _, j := range jobs {
			if err := j.Validate(sys.Capacities); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseWalltimes(t *testing.T) {
	sys := ThetaScaled(32)
	base := GenerateBase(DefaultGenerator(sys, 41))
	if len(base) == 0 {
		t.Fatal("empty base trace")
	}

	// sigma <= 0 is the identity.
	if got := NoiseWalltimes(base, 0, 7); !reflect.DeepEqual(got, base) {
		t.Fatal("sigma=0 is not the identity")
	}

	noised := NoiseWalltimes(base, 0.5, 7)
	if len(noised) != len(base) {
		t.Fatalf("%d jobs out, want %d", len(noised), len(base))
	}
	changed := 0
	for i, j := range noised {
		b := base[i]
		if j == b {
			t.Fatal("NoiseWalltimes returned an aliased job instead of a clone")
		}
		if j.Submit != b.Submit || j.Runtime != b.Runtime || !reflect.DeepEqual(j.Demand, b.Demand) {
			t.Fatalf("job %d: noise touched a non-walltime field", i)
		}
		if j.Walltime < j.Runtime {
			t.Fatalf("job %d: noised walltime %v underruns runtime %v", i, j.Walltime, j.Runtime)
		}
		if w := j.Walltime; w != math.Ceil(w/900)*900 {
			t.Fatalf("job %d: walltime %v off the 15-minute grid", i, w)
		}
		if j.Walltime != b.Walltime {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("sigma=0.5 changed no walltime at all")
	}

	// Determinism: same seed, same output; different seed, different noise.
	again := NoiseWalltimes(base, 0.5, 7)
	if !jobsEqual(noised, again) {
		t.Fatal("NoiseWalltimes is not deterministic for a fixed seed")
	}
	other := NoiseWalltimes(base, 0.5, 8)
	if jobsEqual(noised, other) {
		t.Fatal("different seeds produced identical noise")
	}
}

func jobsEqual(a, b []*job.Job) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Walltime != b[i].Walltime || a[i].Submit != b[i].Submit {
			return false
		}
	}
	return true
}

func TestWithPowerBudget(t *testing.T) {
	sys := ThetaScaled(16)
	def := WithPower(sys)
	same := WithPowerBudget(sys, ThetaPowerBudgetKW)
	if !reflect.DeepEqual(def, same) {
		t.Fatalf("WithPowerBudget(500) != WithPower: %+v vs %+v", same, def)
	}
	tight := WithPowerBudget(sys, 250)
	if tight.Capacities[2] >= def.Capacities[2] {
		t.Fatalf("tighter budget did not shrink capacity: %d vs %d", tight.Capacities[2], def.Capacities[2])
	}

	// A tighter budget makes the same physical draws a larger fraction of
	// capacity: power demand units stay put while capacity shrinks.
	base := GenerateBase(DefaultGenerator(sys, 51))
	pool := AssignDarshanBB(base, sys.Capacities[1], 52)
	psc := PowerScenarios()[0]
	defJobs := ApplyPowerBudget(base, pool, psc, def, ThetaPowerBudgetKW, 9)
	tightJobs := ApplyPowerBudget(base, pool, psc, tight, 250, 9)
	for i := range defJobs {
		if tightJobs[i].Demand[2] < defJobs[i].Demand[2]/2-1 {
			t.Fatalf("job %d: tight-budget demand %d collapsed vs default %d", i, tightJobs[i].Demand[2], defJobs[i].Demand[2])
		}
	}
	legacy := ApplyPower(base, pool, psc, def, 9)
	if !reflect.DeepEqual(defJobs, legacy) {
		t.Fatal("ApplyPowerBudget(500) differs from ApplyPower")
	}
}
