package workload

import (
	"math"
	"math/rand"

	"repro/internal/job"
)

// Zipf-skewed user/project ownership — the zipf_theta scenario axis. Real
// cluster logs attribute most submitted work to a small set of heavy users;
// this file labels a workload's jobs with user ids drawn from a Zipf
// distribution over a fixed user population, so the skew is controlled by
// one exponent. Ownership is pure metadata: schedulers stay user-blind
// (the contract internal/job documents on Job.User), so the axis perturbs
// per-user accounting without touching placement.

// DefaultZipfUsers is the user-population size the "zipf=θ" variant syntax
// implies when a spec doesn't choose its own.
const DefaultZipfUsers = 64

// ZipfPMF returns the Zipf probability mass over ranks 1..users:
// p(k) ∝ 1/k^theta, normalized. theta = 0 degenerates to the uniform
// distribution; larger theta concentrates mass on the lowest ranks.
// It panics on users <= 0 or a non-finite/negative theta (misuse, not data).
func ZipfPMF(users int, theta float64) []float64 {
	if users <= 0 {
		panic("workload: ZipfPMF needs a positive user count")
	}
	if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		panic("workload: ZipfPMF needs a finite theta >= 0")
	}
	p := make([]float64, users)
	sum := 0.0
	for k := range p {
		p[k] = math.Pow(float64(k+1), -theta)
		sum += p[k]
	}
	for k := range p {
		p[k] /= sum
	}
	return p
}

// AssignZipfUsers returns a copy of jobs whose User fields are drawn from
// the Zipf distribution over ranks 1..users with exponent theta, by inverse
// CDF on exactly one rng draw per job. Everything else — arrivals, runtimes,
// walltimes, demands — is byte-identical to the input (the clone resets sim
// state like every workload transform). theta = 0 is the unskewed baseline:
// a uniform assignment over the same population, from the same draws.
// users <= 0 disables the axis and returns plain clones with no rng draws.
func AssignZipfUsers(jobs []*job.Job, users int, theta float64, seed int64) []*job.Job {
	if users <= 0 {
		return job.CloneAll(jobs)
	}
	cdf := ZipfPMF(users, theta)
	for k := 1; k < users; k++ {
		cdf[k] += cdf[k-1]
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*job.Job, len(jobs))
	for i, j := range jobs {
		c := j.Clone()
		u := rng.Float64()
		// Inverse CDF: the first rank whose cumulative mass covers u.
		lo, hi := 0, users-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		c.User = lo + 1
		out[i] = c
	}
	return out
}
